"""Self-contained HTML rendering of a :class:`~repro.report.tables.Report`.

One file, zero external assets: inline CSS, speedup grids, a
per-transport occupancy heatmap (cell colour = busy fraction), LogGP
attribution stacks as proportional bars, and the regression flag list.
Open it in any browser; CI uploads it as the ``report`` artifact.
"""

from __future__ import annotations

from html import escape
from typing import Any, Dict, List, Optional

from ..obs.attribution import COMPONENTS
from .tables import BASELINE_LIBRARY, GroupTable, Report

_CSS = """
body { font: 14px/1.5 -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 72em; color: #1a1a2e; }
h1 { font-size: 1.5em; } h2 { font-size: 1.2em; margin-top: 2em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #d0d0e0; padding: 0.3em 0.7em; text-align: right; }
th { background: #f0f0f8; }
td.name, th.name { text-align: left; }
.win { font-weight: 600; color: #0a7a2f; }
.drift { font-weight: 600; color: #b00020; }
.ok { color: #0a7a2f; }
.stack { display: flex; height: 1.2em; width: 24em; border: 1px solid #aaa; }
.stack div { height: 100%; }
.legend span { display: inline-block; margin-right: 1em; }
.legend i { display: inline-block; width: 0.9em; height: 0.9em;
            margin-right: 0.3em; vertical-align: -0.1em; }
small { color: #667; }
"""

#: component → stack colour (stable across reports)
_COLORS = {
    "L": "#4c72b0", "o": "#dd8452", "gG": "#55a868", "copy": "#c44e52",
    "sync": "#8172b3", "compute": "#937860", "queue": "#b0b0b8",
}


def _heat(value: Optional[float]) -> str:
    """Background colour for an occupancy cell (0 → white, 1 → deep red)."""
    if value is None:
        return ""
    v = max(0.0, min(1.0, value))
    # white → orange-red ramp
    g = int(245 - 160 * v)
    b = int(240 - 220 * v)
    return f' style="background: rgb(250,{g},{b})"'


def _speedup_table(group: GroupTable) -> List[str]:
    parts = [f"<h2>{escape(group.title)}</h2>", "<table>"]
    parts.append(
        "<tr><th class=name>bytes</th>"
        + "".join(f"<th>{escape(lib)} (µs)</th>" for lib in group.libraries)
        + "".join(f"<th>{escape(lib)} ×</th>"
                  for lib in group.libraries if lib != BASELINE_LIBRARY)
        + "</tr>"
    )
    for nbytes in group.sizes:
        cells = [f"<td class=name>{nbytes}</td>"]
        best = min((group.latency[(lib, nbytes)], lib)
                   for lib in group.libraries
                   if (lib, nbytes) in group.latency)[1]
        for lib in group.libraries:
            lat = group.latency.get((lib, nbytes))
            mark = " class=win" if lib == best else ""
            cells.append(f"<td{mark}>{lat:.2f}</td>" if lat is not None
                         else "<td>–</td>")
        for lib in group.libraries:
            if lib == BASELINE_LIBRARY:
                continue
            spd = group.speedup(lib, nbytes)
            cells.append(f"<td>{spd:.2f}</td>" if spd is not None
                         else "<td>–</td>")
        parts.append("<tr>" + "".join(cells) + "</tr>")
    parts.append("</table>")
    parts.append(f"<small>speedup baseline: {escape(BASELINE_LIBRARY)}; "
                 "bold = fastest library at that size</small>")
    return parts


def _occupancy_section(report: Report) -> List[str]:
    if not report.occupancy:
        return []
    parts = ["<h2>Resource occupancy per transport</h2>", "<table>"]
    kinds = ("nic_tx", "nic_rx", "membus", "uplink")
    parts.append(
        "<tr><th class=name>point</th>"
        + "".join(f"<th>{k}</th>" for k in kinds)
        + "<th>injection</th><th>active ranks</th></tr>"
    )
    for row in report.occupancy:
        cells = [f"<td class=name>{escape(row['key'])}</td>"]
        for kind in kinds:
            v = row.get(kind)
            cells.append(f"<td{_heat(v)}>{v:.3f}</td>" if v is not None
                         else "<td>–</td>")
        inj = row.get("injection_occupancy")
        cells.append(f"<td{_heat(inj)}>{inj:.4f}</td>" if inj is not None
                     else "<td>–</td>")
        active = row.get("active_ranks")
        cells.append(f"<td>{active}</td>" if active is not None
                     else "<td>–</td>")
        parts.append("<tr>" + "".join(cells) + "</tr>")
    parts.append("</table>")
    parts.append("<small>cell colour = busy fraction of the measured "
                 "window; injection = Σ msgs·o / (elapsed · nranks)</small>")
    if report.ratios:
        parts.append("<h2>NIC injection engines: multi-object vs "
                     "single-leader</h2><table>")
        parts.append("<tr><th class=name>point</th>"
                     "<th>engines (MColl)</th><th>engines (leader)</th>"
                     "<th>engine ratio</th><th>bar</th><th>verdict</th>"
                     "<th>time-occupancy ratio</th></tr>")
        for row in report.ratios:
            verdict = ("<td class=ok>PASS</td>" if row["clears_bar"]
                       else "<td class=drift>FAIL</td>")
            eng = (f"{row['engine_ratio']:.1f}×"
                   if row["engine_ratio"] is not None else "–")
            occ = (f"{row['occupancy_ratio']:.1f}×"
                   if row["occupancy_ratio"] is not None else "–")
            parts.append(
                f"<tr><td class=name>{escape(row['collective'])} "
                f"{row['nbytes']} B @ {row['nodes']}x{row['ppn']}</td>"
                f"<td>{row['PiP-MColl_engines']}</td>"
                f"<td>{row['SingleLeader_engines']}</td>"
                f"<td>{eng}</td><td>{row['bar']:.0f}×</td>{verdict}"
                f"<td>{occ}</td></tr>"
            )
        parts.append("</table>")
        parts.append("<small>engine ratio = NIC injection engines the "
                     "schedule engages (the paper's \"all P busy vs P−1 "
                     "idle\" claim, bar = P = ppn); time-occupancy ratio "
                     "= Σ msgs·o / (elapsed · nranks) quotient</small>")
    return parts


def _attribution_section(report: Report) -> List[str]:
    if not report.attribution:
        return []
    parts = ["<h2>LogGP attribution</h2>"]
    parts.append("<p class=legend>" + "".join(
        f"<span><i style='background:{_COLORS[c]}'></i>{c}</span>"
        for c in COMPONENTS) + "</p>")
    parts.append("<table>")
    parts.append("<tr><th class=name>point</th><th>measured (µs)</th>"
                 "<th>dominant</th><th class=name>stack</th></tr>")
    for row in report.attribution:
        total = sum(row["terms_us"].values()) or 1.0
        stack = "".join(
            f"<div style='width:{100.0 * row['terms_us'][c] / total:.2f}%;"
            f"background:{_COLORS[c]}' title='{c}: "
            f"{row['terms_us'][c]:.2f}µs'></div>"
            for c in COMPONENTS if row["terms_us"].get(c, 0.0) > 0.0
        )
        parts.append(
            f"<tr><td class=name>{escape(row['key'])}</td>"
            f"<td>{row['measured_us']:.2f}</td>"
            f"<td>{escape(row['dominant'])} "
            f"({escape(str(row['dominant_resource']))})</td>"
            f"<td class=name><div class=stack>{stack}</div></td></tr>"
        )
    parts.append("</table>")
    return parts


def _regression_section(report: Report) -> List[str]:
    if not report.flags:
        return []
    parts = [f"<h2>Regression vs golden (±{report.tolerance:.0%})</h2>",
             "<table>",
             "<tr><th class=name>key</th><th>golden (µs)</th>"
             "<th>fresh (µs)</th><th>drift</th></tr>"]
    for flag in report.flags:
        cls = " class=drift" if flag["drifted"] else " class=ok"
        parts.append(
            f"<tr><td class=name>{escape(flag['key'])}</td>"
            f"<td>{flag['golden_us']:.2f}</td>"
            f"<td>{flag['fresh_us']:.2f}</td>"
            f"<td{cls}>{flag['drift']:+.1%}</td></tr>"
        )
    parts.append("</table>")
    return parts


def _host_section(host: Dict[str, Any]) -> List[str]:
    """Host wall-clock telemetry (``repro telemetry --json`` output).

    Everything above this section is on the *simulated* clock; this
    table is the cost of running the simulator itself — worker
    utilization, the per-shard window-stall breakdown, and cache/queue
    efficiency (see docs/OBSERVABILITY.md, host-time telemetry).
    """
    if not host:
        return []
    parts = ["<h2>Host telemetry (wall clock)</h2>"]
    eng = host.get("engine") or {}
    bench = host.get("bench") or {}
    bits = []
    if bench.get("cells"):
        bits.append(f"{bench['cells']} cells in {bench['wall_s']:.2f}s wall")
    if eng.get("windows"):
        bits.append(f"{eng['windows']} engine windows")
    if eng.get("coordinator_rounds"):
        bits.append(f"{eng['coordinator_rounds']} coordinator rounds, "
                    f"{eng['cross_worker_msgs']} cross-worker msgs")
    if bits:
        parts.append(f"<p><small>{escape(' · '.join(bits))}</small></p>")
    shards = host.get("shards") or {}
    if shards:
        slowest = host.get("slowest_shard")
        parts.append("<h2>Window-stall breakdown by shard</h2><table>")
        parts.append("<tr><th class=name>shard</th><th>advances</th>"
                     "<th>busy (ms)</th><th>max (ms)</th><th>share</th></tr>")
        total = sum(row["busy_s"] for row in shards.values()) or 1.0
        for track, row in shards.items():
            share = row["busy_s"] / total
            mark = " class=win" if track == slowest else ""
            parts.append(
                f"<tr><td class=name{mark}>{escape(track)}"
                f"{' (slowest)' if track == slowest else ''}</td>"
                f"<td>{row['advances']}</td>"
                f"<td>{row['busy_s'] * 1e3:.1f}</td>"
                f"<td>{row['max_s'] * 1e3:.2f}</td>"
                f"<td{_heat(share)}>{share:.0%}</td></tr>")
        parts.append("</table>")
    workers = host.get("workers") or {}
    if workers:
        parts.append("<h2>Worker utilization</h2><table>")
        parts.append("<tr><th class=name>worker</th><th>windows</th>"
                     "<th>busy (ms)</th><th>idle (ms)</th>"
                     "<th>utilization</th></tr>")
        for track, row in workers.items():
            util = row["utilization"]
            parts.append(
                f"<tr><td class=name>{escape(track)}</td>"
                f"<td>{row['windows']}</td>"
                f"<td>{row['busy_s'] * 1e3:.1f}</td>"
                f"<td>{row['idle_s'] * 1e3:.1f}</td>"
                f"<td{_heat(util)}>{util:.1%}</td></tr>")
        parts.append("</table>")
    cache = host.get("cache") or {}
    queue = host.get("queue") or {}
    if cache.get("ops") or queue:
        parts.append("<h2>Cache / queue efficiency</h2><table>")
        parts.append("<tr><th class=name>counter</th><th>value</th></tr>")
        for name, value in sorted((cache.get("ops") or {}).items()):
            parts.append(f"<tr><td class=name>cache {escape(name)}</td>"
                         f"<td>{value}</td></tr>")
        if cache.get("hit_ratio") is not None:
            parts.append(f"<tr><td class=name>cache hit ratio</td>"
                         f"<td>{cache['hit_ratio']:.1%}</td></tr>")
        for name, value in sorted(queue.items()):
            parts.append(f"<tr><td class=name>queue {escape(name)}</td>"
                         f"<td>{value}</td></tr>")
        parts.append("</table>")
    return parts


def render_html(report: Report, title: str = "repro benchmark report",
                host: Optional[Dict[str, Any]] = None) -> str:
    """The whole report as one self-contained HTML page.

    ``host`` is an optional host-telemetry summary
    (:meth:`repro.obs.host.HostReport.as_dict`, usually loaded from
    ``host_telemetry.json`` next to the records) rendered as its own
    wall-clock section after the sim-time tables.
    """
    parts: List[str] = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{escape(title)}</h1>",
        f"<p><small>{len(report.records)} records · "
        f"{len(report.groups)} grids · "
        f"{len(report.drifted)} regression flags</small></p>",
    ]
    for group in report.groups:
        parts.extend(_speedup_table(group))
    parts.extend(_occupancy_section(report))
    parts.extend(_attribution_section(report))
    parts.extend(_regression_section(report))
    parts.extend(_host_section(host or {}))
    parts.append("</body></html>")
    return "\n".join(parts)
