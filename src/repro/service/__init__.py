"""Sweep service (S-SERVE): content-addressed cache + batched jobs.

The "heavy traffic" layer over the bench harness: every (machine,
library, collective, size, flags) cell is content-addressed
(:mod:`~repro.service.keys`), measured at most once, and stored as a
schema-validated BenchRecord in an atomic, corruption-detecting
on-disk cache (:mod:`~repro.service.cache`).  The
:class:`SweepJobQueue` deduplicates and batches cell requests across
forked workers, streaming per-cell progress; ``python -m repro serve``
and ``sweep --cache`` are the front ends.  Cached and uncached paths
produce byte-identical records — see ``docs/SERVICE.md``.
"""

from .cache import (
    CACHE_LAYOUT_VERSION,
    CacheStats,
    ResultCache,
    as_cache,
    point_from_record,
    record_digest,
)
from .keys import (
    CACHE_KEY_SCHEMA,
    CacheKeyError,
    cell_key,
    engine_fingerprint,
    key_payload,
    library_fingerprint,
    machine_fingerprint,
)
from .queue import QueueStats, SweepJobQueue, SweepRequest, cached_bench_collective
from .server import RESPONSE_SCHEMA, handle_request, parse_request, serve

__all__ = [
    "CACHE_KEY_SCHEMA",
    "CACHE_LAYOUT_VERSION",
    "CacheKeyError",
    "CacheStats",
    "QueueStats",
    "RESPONSE_SCHEMA",
    "ResultCache",
    "SweepJobQueue",
    "SweepRequest",
    "as_cache",
    "cached_bench_collective",
    "cell_key",
    "engine_fingerprint",
    "handle_request",
    "key_payload",
    "library_fingerprint",
    "machine_fingerprint",
    "parse_request",
    "point_from_record",
    "record_digest",
    "serve",
]
