"""Deduplicating, batching sweep-cell job queue.

:class:`SweepJobQueue` turns a list of :class:`SweepRequest` cells
into :class:`~repro.bench.harness.BenchPoint` results, in request
order, through three stages:

1. **cache probe** — every content-addressable cell is looked up in
   the :class:`~repro.service.cache.ResultCache` first; hits cost one
   file read;
2. **dedup window** — remaining cells are deduplicated by cache key
   within the submission, so a grid that names the same cell twice
   simulates it once (uncacheable cells have no key and are never
   deduplicated — there is nothing sound to dedup *on*);
3. **batched execution** — unique misses run through
   ``bench_collective``, either inline or fanned out across forked
   worker processes (the same ``os.fork`` + ``Pipe`` + ship-results-
   home choreography as :mod:`repro.sim.parallel`, one level up:
   whole worlds instead of shards).  Workers stream per-cell
   completions, so progress events arrive as cells finish, and results
   are keyed by task index — completion order never leaks into output
   order.  Fresh results are written back to the cache atomically.

Progress streaming: pass ``on_event`` and the queue emits dicts —
``{"phase": "hit"|"dedup"|"miss"|"start"|"done", "index": i,
"total": n, "key": <key or None>, "cell": "<human label>"}`` — one
``hit``/``dedup``/``miss`` per request during the probe, then
``start``/``done`` per executed cell (``start`` is only emitted for
inline execution; forked workers report completions).

Determinism: the simulator is deterministic, records are
schema-validated on both cache boundaries, and a cache hit rebuilds
the exact BenchPoint a fresh run would produce — the differential
suite (``tests/service/test_differential_cache.py``) asserts
byte-identical records across cold/warm/mixed paths on both the
calendar and sharded engines.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from multiprocessing import Pipe
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable, Dict, List, Optional, Union

from ..bench import harness as _harness
from ..machine import MachineParams
from ..obs import host
from ..sim.spec import EngineSpec
from .cache import ResultCache, as_cache, point_from_record
from .keys import CacheKeyError, cell_key


@dataclass
class SweepRequest:
    """One sweep cell: everything ``bench_collective`` needs."""

    library: Any  # name, spec string, or MpiLibrary instance
    collective: str
    nbytes: int
    params: MachineParams
    warmup: int = 1
    iters: int = 3
    functional: bool = False
    root: int = 0
    engine: Union[str, EngineSpec, None] = None
    resources: bool = False
    attribution: bool = False
    #: overrides/extends the content-address (see service.keys)
    library_id: Optional[Dict[str, Any]] = None
    extra: Any = None

    def cache_key(self) -> Optional[str]:
        """The cell's content address, or None when unaddressable."""
        try:
            return cell_key(
                self.library, self.collective, self.nbytes, self.params,
                warmup=self.warmup, iters=self.iters,
                functional=self.functional, root=self.root,
                engine=self.engine, resources=self.resources,
                attribution=self.attribution,
                library_id=self.library_id, extra=self.extra,
            )
        except CacheKeyError:
            return None

    def label(self) -> str:
        """Human-readable cell name for progress events and errors."""
        lib = (self.library if isinstance(self.library, str)
               else self.library.profile.name)
        return (f"{lib}/{self.collective}/{self.nbytes}B"
                f"@{self.params.nodes}x{self.params.ppn}")

    def run(self) -> "_harness.BenchPoint":
        """Measure this cell directly (no cache involvement)."""
        # Late module-attribute lookup so tests can monkeypatch
        # bench_collective and count real simulations.
        return _harness.bench_collective(
            self.library, self.collective, self.nbytes, self.params,
            warmup=self.warmup, iters=self.iters,
            functional=self.functional, root=self.root,
            engine=self.engine, resources=self.resources,
            attribution=self.attribution,
        )


@dataclass
class QueueStats:
    """What one :meth:`SweepJobQueue.run` submission did."""

    requested: int = 0
    hits: int = 0
    deduped: int = 0
    computed: int = 0
    #: cache keys of executed cells, in execution-plan order (None for
    #: uncacheable cells); the stress suite audits dedup with this
    computed_keys: List[Optional[str]] = field(default_factory=list)

    def describe(self) -> str:
        return (f"{self.requested} cells: {self.hits} cached, "
                f"{self.deduped} deduped, {self.computed} simulated")


class SweepJobQueue:
    """Batch executor for sweep cells over one shared result cache."""

    def __init__(self, cache: Union[None, str, "os.PathLike", ResultCache] = None,
                 workers: int = 1,
                 on_event: Optional[Callable[[Dict[str, Any]], None]] = None):
        self.cache = as_cache(cache)
        self.workers = max(1, int(workers))
        self.on_event = on_event
        self.stats = QueueStats()

    def _emit(self, phase: str, index: int, total: int,
              key: Optional[str], cell: str) -> None:
        tracer = host.active()
        if tracer is not None:
            tracer.instant(f"queue.{phase}", track="queue", cat="service",
                           index=index, total=total, cell=cell)
            tracer.count("queue_cells_total", phase=phase)
        if self.on_event is not None:
            self.on_event({"phase": phase, "index": index, "total": total,
                           "key": key, "cell": cell})

    def run(self, requests: List[SweepRequest]) -> List["_harness.BenchPoint"]:
        """Resolve every request; returns points in request order."""
        total = len(requests)
        self.stats = QueueStats(requested=total)
        keys = [req.cache_key() for req in requests]
        points: List[Optional[_harness.BenchPoint]] = [None] * total

        # -- probe + dedup window --------------------------------------
        first_of: Dict[str, int] = {}
        followers: Dict[int, List[int]] = {}
        plan: List[int] = []  # representative indices to execute
        for i, (req, key) in enumerate(zip(requests, keys)):
            if key is not None and self.cache is not None:
                record = self.cache.get(key)
                if record is not None:
                    points[i] = point_from_record(record)
                    self.stats.hits += 1
                    self._emit("hit", i, total, key, req.label())
                    continue
            if key is not None and key in first_of:
                followers[first_of[key]].append(i)
                self.stats.deduped += 1
                self._emit("dedup", i, total, key, req.label())
                continue
            if key is not None:
                first_of[key] = i
            followers[i] = []
            plan.append(i)
            self._emit("miss", i, total, key, req.label())

        # -- batched execution -----------------------------------------
        if plan:
            computed = self._execute([requests[i] for i in plan],
                                     [keys[i] for i in plan], total)
            for i, point in zip(plan, computed):
                points[i] = point
                if keys[i] is not None and self.cache is not None:
                    self.cache.put_point(keys[i], point)
                for j in followers[i]:
                    points[j] = point
            self.stats.computed = len(plan)
            self.stats.computed_keys = [keys[i] for i in plan]
        return points  # type: ignore[return-value]

    # -- execution backends --------------------------------------------
    def _execute(self, todo: List[SweepRequest],
                 todo_keys: List[Optional[str]],
                 total: int) -> List["_harness.BenchPoint"]:
        if self.workers <= 1 or len(todo) <= 1:
            tracer = host.active()
            out = []
            for i, req in enumerate(todo):
                self._emit("start", i, total, todo_keys[i], req.label())
                if tracer is None:
                    point = req.run()
                else:
                    t0 = tracer.clock()
                    point = req.run()
                    tracer.span_at("cell.run", t0, tracer.clock(),
                                   track="queue", cat="service",
                                   cell=req.label())
                out.append(point)
                self._emit("done", i, total, todo_keys[i], req.label())
            return out
        return self._execute_forked(todo, todo_keys, total)

    def _execute_forked(self, todo: List[SweepRequest],
                        todo_keys: List[Optional[str]],
                        total: int) -> List["_harness.BenchPoint"]:
        """Fan cells out across forked workers (contiguous blocks,
        results keyed by task index — see module docstring)."""
        nworkers = min(self.workers, len(todo))
        owned_by = [[i for i in range(len(todo)) if i % nworkers == w]
                    for w in range(nworkers)]
        conns = []
        pids = []
        for w in range(nworkers):
            parent_conn, child_conn = Pipe()
            pid = os.fork()
            if pid == 0:
                # Child: drop the parent ends (ours and earlier workers').
                parent_conn.close()
                for other in conns:
                    other.close()
                code = 0
                try:
                    tracer = host.active()
                    for i in owned_by[w]:
                        if tracer is None:
                            point = todo[i].run()
                        else:
                            t0 = tracer.clock()
                            point = todo[i].run()
                            tracer.span_at("cell.run", t0, tracer.clock(),
                                           track="queue", cat="service",
                                           cell=todo[i].label())
                        child_conn.send(("done", i, point))
                    # Telemetry rides the final message home (fork-safe:
                    # drain() holds only this child's events).
                    child_conn.send(("final",
                                     tracer.drain() if tracer is not None
                                     else None))
                except BaseException:  # pragma: no cover - shipped home
                    import traceback

                    code = 1
                    try:
                        child_conn.send(("error", todo[i].label(),
                                         traceback.format_exc()))
                    except Exception:
                        pass
                finally:
                    child_conn.close()
                    os._exit(code)
            child_conn.close()
            conns.append(parent_conn)
            pids.append(pid)

        results: List[Optional[_harness.BenchPoint]] = [None] * len(todo)
        try:
            pending = set(conns)
            while pending:
                for conn in _conn_wait(list(pending)):
                    try:
                        msg = conn.recv()
                    except EOFError:
                        raise RuntimeError(
                            "sweep worker exited without reporting; "
                            "its cells are lost"
                        ) from None
                    if msg[0] == "done":
                        _tag, i, point = msg
                        results[i] = point
                        self._emit("done", i, total, todo_keys[i],
                                   todo[i].label())
                    elif msg[0] == "final":
                        tracer = host.active()
                        if tracer is not None and len(msg) > 1:
                            tracer.absorb(msg[1])
                        pending.discard(conn)
                    else:
                        raise RuntimeError(
                            f"sweep worker failed on {msg[1]}:\n{msg[2]}"
                        )
        finally:
            for conn in conns:
                conn.close()
            for pid in pids:
                os.waitpid(pid, 0)
        return results  # type: ignore[return-value]


def cached_bench_collective(
    library: Any,
    collective: str,
    nbytes: int,
    params: MachineParams,
    *,
    cache: Union[str, "os.PathLike", ResultCache],
    warmup: int = 1,
    iters: int = 3,
    functional: bool = False,
    root: int = 0,
    engine: Union[str, EngineSpec, None] = None,
    resources: bool = False,
    attribution: bool = False,
    library_id: Optional[Dict[str, Any]] = None,
    extra: Any = None,
) -> "_harness.BenchPoint":
    """One cell through the cache: probe, else measure and store.

    Raises :class:`~repro.service.keys.CacheKeyError` when the cell is
    not content-addressable — callers decide whether to fall back to a
    direct measurement.
    """
    store = as_cache(cache)
    key = cell_key(library, collective, nbytes, params,
                   warmup=warmup, iters=iters, functional=functional,
                   root=root, engine=engine, resources=resources,
                   attribution=attribution, library_id=library_id,
                   extra=extra)
    record = store.get(key)
    if record is not None:
        return point_from_record(record)
    point = _harness.bench_collective(
        library, collective, nbytes, params, warmup=warmup, iters=iters,
        functional=functional, root=root, engine=engine,
        resources=resources, attribution=attribution,
    )
    store.put_point(key, point)
    return point
