"""Content-addressed cache keys for benchmark cells.

One sweep cell — a ``bench_collective`` call — is addressed by a
canonical SHA-256 over everything that determines its result:

* the **machine fingerprint**: the cost-parameter hash the tuner's
  provenance already uses (:func:`repro.tuner.db.machine_hash` —
  changing the cost model changes the hash, which is the real
  "measurements are stale" event) plus the geometry (nodes × ppn),
  which that hash deliberately excludes;
* the **library fingerprint**: the profile name for built-in models,
  the profile name *plus the tuning-DB content hash* for compiled
  :class:`~repro.tuner.compile.TunedLibrary` instances (two DBs with
  different tables must never share entries);
* the call shape: collective, message size, warmup/iters, functional
  buffers, root, seed, and the telemetry flags (``resources`` /
  ``attribution`` change what the record carries);
* the **engine name** — engines are byte-identical by the differential
  contract, but cache entries stay engine-segregated so a cached
  calendar result can never mask a sharded-engine regression;
* an optional ``extra`` payload for callers whose cell identity has
  more dimensions (the tuner stores the candidate config here).

Canonicalisation rules (property-tested in
``tests/service/test_keys.py``):

* spec aliases collapse — ``"MPICH"`` and ``make_library("MPICH")``
  hash identically, as do ``tuned:<path>`` and its compiled instance;
* engine aliases collapse — ``None``/``"calendar"`` agree, and every
  ``sharded:<shards>[x<workers>]`` spelling agrees (shard/worker
  counts are an execution detail, not a result dimension);
* dict key order never matters (``sort_keys`` canonical JSON);
* the machine's display ``name`` never matters (content, not label).

Libraries whose behaviour is not reconstructable from content — ad-hoc
:class:`~repro.mpilibs.MpiLibrary` subclasses, registered test doubles
— raise :class:`CacheKeyError`; callers fall back to direct
computation rather than caching something unaddressable.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional, Union

from ..machine import MachineParams
from ..mpilibs import MpiLibrary, make_library
from ..mpilibs.registry import _LIBRARIES
from ..sim.spec import ENGINE_NAMES, EngineSpec, _parse_engine
from ..tuner.db import machine_hash

#: bump on any change to the key payload shape — old entries become
#: unreachable (their keys are never derived again), which is the
#: cheapest possible invalidation
CACHE_KEY_SCHEMA = 1


class CacheKeyError(ValueError):
    """A cell that cannot be content-addressed (so must be computed)."""


def machine_fingerprint(params: MachineParams) -> Dict[str, Any]:
    """Cost hash + geometry; the display name is deliberately absent."""
    return {
        "cost": machine_hash(params),
        "nodes": params.nodes,
        "ppn": params.ppn,
    }


def library_fingerprint(library: Union[str, MpiLibrary]) -> Dict[str, Any]:
    """Canonical identity of a library spec or instance.

    Raises :class:`CacheKeyError` for libraries whose algorithm tables
    are not derivable from content (anonymous subclasses, registered
    test doubles): caching those would serve results for code the key
    cannot see.
    """
    lib = make_library(library)
    db = getattr(lib, "db", None)
    if db is not None and hasattr(db, "dumps"):
        digest = hashlib.sha256(db.dumps().encode()).hexdigest()[:16]
        return {"name": lib.profile.name, "tunedb": digest}
    cls = _LIBRARIES.get(lib.profile.name)
    if cls is not None and type(lib) is cls:
        return {"name": lib.profile.name}
    raise CacheKeyError(
        f"library {lib.profile.name!r} ({type(lib).__name__}) is not "
        "content-addressable; pass library_id= or compute directly"
    )


def engine_fingerprint(engine: Union[str, EngineSpec, None]) -> str:
    """Resolved engine *name* (aliases and shard/worker counts collapse).

    ``None`` means the default engine, which is ``calendar``
    (:mod:`repro.sim.spec`); shard and worker counts only change how
    the byte-identical result is produced, never what it is.
    """
    if engine is None:
        return "calendar"
    if isinstance(engine, EngineSpec):
        return engine.name
    name, _shards, _workers = _parse_engine(str(engine))
    if name not in ENGINE_NAMES:
        raise CacheKeyError(
            f"unknown engine {engine!r}; available: {', '.join(ENGINE_NAMES)}"
        )
    return name


def key_payload(
    library: Union[str, MpiLibrary],
    collective: str,
    nbytes: int,
    params: MachineParams,
    *,
    warmup: int = 1,
    iters: int = 3,
    functional: bool = False,
    root: int = 0,
    seed: Optional[int] = None,
    engine: Union[str, EngineSpec, None] = None,
    resources: bool = False,
    attribution: bool = False,
    library_id: Optional[Dict[str, Any]] = None,
    extra: Any = None,
) -> Dict[str, Any]:
    """The canonical (pre-hash) key payload — exposed for docs/tests."""
    return {
        "schema": CACHE_KEY_SCHEMA,
        "machine": machine_fingerprint(params),
        "library": (library_id if library_id is not None
                    else library_fingerprint(library)),
        "collective": str(collective),
        "nbytes": int(nbytes),
        "warmup": int(warmup),
        "iters": int(iters),
        "functional": bool(functional),
        "root": int(root),
        "seed": seed,
        "engine": engine_fingerprint(engine),
        "resources": bool(resources),
        "attribution": bool(attribution),
        "extra": extra,
    }


def cell_key(
    library: Union[str, MpiLibrary],
    collective: str,
    nbytes: int,
    params: MachineParams,
    **kwargs: Any,
) -> str:
    """SHA-256 hex digest of the canonical key payload."""
    payload = key_payload(library, collective, nbytes, params, **kwargs)
    try:
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise CacheKeyError(f"key payload is not canonical JSON: {exc}") from exc
    return hashlib.sha256(blob.encode()).hexdigest()
