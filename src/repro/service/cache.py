"""Content-addressed, on-disk result cache for sweep cells.

Layout (versioned so incompatible layouts never collide)::

    <root>/
      v1/                      # CACHE_LAYOUT_VERSION directory
        ab/                    # first two hex chars of the key
          ab3f...e2.json       # one entry per cell key

Each entry file is a JSON object::

    {"layout": 1, "key": "<sha256>", "sha256": "<payload digest>",
     "record": { ...BenchRecord as_dict()... }}

The ``record`` is exactly what :meth:`BenchPoint.to_record()
<repro.bench.harness.BenchPoint.to_record>` serialises (meta left
empty — provenance meta is the *caller's*, applied on the way out), so
cached and uncached paths emit byte-identical records.

Safety properties:

* **atomic writes** — entries are written to a same-directory temp
  file, fsynced, then ``os.replace``d into place; concurrent writers
  of the same key race benignly (the simulator is deterministic, both
  wrote the same bytes) and readers never observe a torn file;
* **corruption detection** — an entry is served only if it parses, its
  layout version and embedded key match, the SHA-256 of the canonical
  record payload matches, and the record passes
  :func:`~repro.bench.record.validate_record`.  Anything else is
  counted (``stats.corrupt`` / ``stats.stale``), unlinked best-effort,
  and reported as a miss — a damaged cache degrades to recomputation,
  never to wrong data;
* **invalidation** — three independent guards: the layout version
  directory (``v1``), the key-schema version hashed into every key
  (:data:`~repro.service.keys.CACHE_KEY_SCHEMA`), and the BenchRecord
  schema version checked at read time (a schema bump strands old
  entries as *stale*).  A cost-model change rolls the machine hash,
  which re-keys every cell.  See ``docs/SERVICE.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from ..bench.harness import BenchPoint
from ..bench.record import SCHEMA_VERSION, validate_record
from ..obs import host

#: bump on any incompatible change to the on-disk entry/tree shape
CACHE_LAYOUT_VERSION = 1


def _canonical(record: Dict[str, Any]) -> str:
    """The byte string the integrity digest covers."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def record_digest(record: Dict[str, Any]) -> str:
    """SHA-256 over the canonical record payload."""
    return hashlib.sha256(_canonical(record).encode()).hexdigest()


def point_from_record(record: Dict[str, Any]) -> BenchPoint:
    """Rebuild the :class:`BenchPoint` a record was serialised from.

    Exact inverse of ``point.to_record().as_dict()`` up to the record's
    ``meta``/``key``/``schema`` envelope, so a cache hit hands callers
    the same object shape a fresh measurement would.
    """
    return BenchPoint(
        library=record["library"],
        collective=record["collective"],
        nbytes=record["nbytes"],
        latency_us=record["latency_us"],
        min_us=record["min_us"],
        max_us=record["max_us"],
        iterations=tuple(record["iterations_us"]),
        stats=record.get("stats"),
        nodes=record["nodes"],
        ppn=record["ppn"],
        resources=record.get("resources"),
        attribution=record.get("attribution"),
    )


@dataclass
class CacheStats:
    """Counters one :class:`ResultCache` instance accumulates."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: integrity failures (torn/edited files, checksum or key mismatch)
    corrupt: int = 0
    #: structurally sound entries stranded by a schema bump
    stale: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "corrupt": self.corrupt,
                "stale": self.stale}

    def describe(self) -> str:
        return (f"{self.hits} hits, {self.misses} misses, "
                f"{self.writes} writes"
                + (f", {self.corrupt} corrupt" if self.corrupt else "")
                + (f", {self.stale} stale" if self.stale else ""))

    @property
    def hit_ratio(self) -> Optional[float]:
        """Hits over reads, or None before the first read."""
        reads = self.hits + self.misses
        return self.hits / reads if reads else None


class ResultCache:
    """Content-addressed store of BenchRecord-shaped cell results."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.stats = CacheStats()

    @property
    def dir(self) -> Path:
        """The active layout-version directory."""
        return self.root / f"v{CACHE_LAYOUT_VERSION}"

    def path_for(self, key: str) -> Path:
        return self.dir / key[:2] / f"{key}.json"

    # -- read ----------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The record for ``key``, or None (miss / corrupt / stale)."""
        tracer = host.active()
        if tracer is None:
            return self._get(key)[0]
        t0 = tracer.clock()
        record, outcome = self._get(key)
        tracer.span_at("cache.get", t0, tracer.clock(), track="cache",
                       cat="service", outcome=outcome, key=key[:12])
        tracer.count("cache_ops_total", outcome=outcome)
        return record

    def _get(self, key: str):
        """(record, outcome) — outcome ∈ hit/miss/corrupt/stale."""
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None, "miss"
        except UnicodeDecodeError:
            text = ""  # not even text → the corrupt path below
        record, reason = self._decode(key, text)
        if record is None:
            if reason == "stale":
                self.stats.stale += 1
            else:
                self.stats.corrupt += 1
            # A bad entry can only waste future reads; drop it so the
            # recompute's put() starts from a clean slot.
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.misses += 1
            return None, reason
        self.stats.hits += 1
        return record, "hit"

    @staticmethod
    def _decode(key: str, text: str):
        """(record, None) when the entry is intact, else (None, why)."""
        try:
            obj = json.loads(text)
        except ValueError:
            return None, "corrupt"
        if not isinstance(obj, dict):
            return None, "corrupt"
        if obj.get("layout") != CACHE_LAYOUT_VERSION:
            return None, "stale"
        if obj.get("key") != key:
            return None, "corrupt"
        record = obj.get("record")
        if not isinstance(record, dict):
            return None, "corrupt"
        if record.get("schema") != SCHEMA_VERSION:
            return None, "stale"
        try:
            if obj.get("sha256") != record_digest(record):
                return None, "corrupt"
            validate_record(record, where=f"cache entry {key[:12]}")
        except (TypeError, ValueError):
            return None, "corrupt"
        return record, None

    # -- write ---------------------------------------------------------
    def put(self, key: str, record: Dict[str, Any]) -> Path:
        """Atomically store ``record`` under ``key``; returns the path."""
        tracer = host.active()
        if tracer is None:
            return self._put(key, record)
        t0 = tracer.clock()
        path = self._put(key, record)
        tracer.span_at("cache.put", t0, tracer.clock(), track="cache",
                       cat="service", key=key[:12])
        tracer.count("cache_ops_total", outcome="write")
        return path

    def _put(self, key: str, record: Dict[str, Any]) -> Path:
        validate_record(record, where=f"cache put {key[:12]}")
        entry = {
            "layout": CACHE_LAYOUT_VERSION,
            "key": key,
            "sha256": record_digest(record),
            "record": record,
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Unique temp name per writer; os.replace is atomic within the
        # (same) filesystem, so readers see old-or-new, never torn.
        tmp = path.parent / f".{key}.{os.getpid()}.tmp"
        with open(tmp, "w") as fh:
            fh.write(json.dumps(entry, sort_keys=True, indent=2) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self.stats.writes += 1
        return path

    def put_point(self, key: str, point: BenchPoint) -> Dict[str, Any]:
        """Store a measured point; returns the record dict written."""
        record = point.to_record().as_dict()
        self.put(key, record)
        return record

    # -- maintenance ---------------------------------------------------
    def keys(self) -> Iterator[str]:
        """Every key with an entry file in the active layout."""
        if not self.dir.is_dir():
            return
        for path in sorted(self.dir.glob("*/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Remove every entry in the active layout; returns the count."""
        removed = 0
        for key in list(self.keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed


def as_cache(cache: Union[None, str, Path, ResultCache]) -> Optional[ResultCache]:
    """Coerce a cache argument (path or instance) to a ResultCache."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)
