"""Line-oriented sweep service: ``python -m repro serve``.

A deliberately transport-agnostic front end: requests are JSON
objects, one per line, on stdin (or a file); responses are JSON
objects, one per line, on stdout; progress streams to stderr.  That
makes the service scriptable (``echo '{...}' | python -m repro
serve --cache dir``), pipeable into any real transport later, and —
because every response is built from cache-validated BenchRecords —
byte-reproducible across invocations.

Request schema (one object per line; unknown fields rejected)::

    {"id": <any>,                     # echoed back, optional
     "collective": "allgather",       # required
     "sizes": [16, 64],               # required, per-process bytes
     "libraries": ["MPICH", ...],     # default: the paper lineup
     "preset": "broadwell_opa",       # default shown
     "nodes": 16, "ppn": 6,           # default shown
     "warmup": 1, "iters": 3,         # default shown
     "engine": "sharded:8"}           # default: calendar

Response line::

    {"id": ..., "schema": 1, "ok": true,
     "records": [ {BenchRecord}, ... ],     # request order
     "cache": {"hits": h, "misses": m, "writes": w, ...}}

Failures are data: a malformed request yields ``{"id": ..., "ok":
false, "error": "..."}`` and the loop continues — one bad line must
not take down a shared service.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Optional, TextIO

from ..machine import available_presets, preset
from ..mpilibs import COLLECTIVES, PAPER_LINEUP
from ..obs.host import jsonl_event_writer
from .cache import ResultCache, as_cache
from .queue import SweepJobQueue, SweepRequest

#: bump on any incompatible response-shape change
RESPONSE_SCHEMA = 1

_ALLOWED = {"id", "collective", "sizes", "libraries", "preset",
            "nodes", "ppn", "warmup", "iters", "engine"}


class RequestError(ValueError):
    """A request line the service cannot honour."""


def parse_request(obj: Any) -> Dict[str, Any]:
    """Validate one request object; returns normalised fields."""
    if not isinstance(obj, dict):
        raise RequestError(f"request must be an object, got "
                           f"{type(obj).__name__}")
    unknown = set(obj) - _ALLOWED
    if unknown:
        raise RequestError(f"unknown request fields {sorted(unknown)}")
    for name in ("collective", "sizes"):
        if name not in obj:
            raise RequestError(f"request missing required field {name!r}")
    if obj["collective"] not in COLLECTIVES:
        raise RequestError(f"unknown collective {obj['collective']!r}; "
                           f"available: {', '.join(COLLECTIVES)}")
    sizes = obj["sizes"]
    if (not isinstance(sizes, list) or not sizes
            or not all(isinstance(s, int) and not isinstance(s, bool)
                       and s >= 0 for s in sizes)):
        raise RequestError("'sizes' must be a non-empty list of ints >= 0")
    preset_name = obj.get("preset", "broadwell_opa")
    if preset_name not in available_presets():
        raise RequestError(f"unknown preset {preset_name!r}; "
                           f"available: {available_presets()}")
    libraries = obj.get("libraries") or list(PAPER_LINEUP)
    if not isinstance(libraries, list) or not all(
            isinstance(name, str) for name in libraries):
        raise RequestError("'libraries' must be a list of spec strings")
    return {
        "id": obj.get("id"),
        "collective": obj["collective"],
        "sizes": list(sizes),
        "libraries": libraries,
        "preset": preset_name,
        "nodes": int(obj.get("nodes", 16)),
        "ppn": int(obj.get("ppn", 6)),
        "warmup": int(obj.get("warmup", 1)),
        "iters": int(obj.get("iters", 3)),
        "engine": obj.get("engine"),
    }


def handle_request(obj: Any, cache: Optional[ResultCache],
                   workers: int = 1,
                   on_event=None) -> Dict[str, Any]:
    """One request → one response dict (never raises on bad input)."""
    req_id = obj.get("id") if isinstance(obj, dict) else None
    try:
        req = parse_request(obj)
        params = preset(req["preset"], nodes=req["nodes"], ppn=req["ppn"]) \
            if req["preset"] != "single_node" \
            else preset(req["preset"], ppn=req["ppn"])
        cells = [
            SweepRequest(library=lib, collective=req["collective"],
                         nbytes=nbytes, params=params,
                         warmup=req["warmup"], iters=req["iters"],
                         engine=req["engine"])
            for lib in req["libraries"] for nbytes in req["sizes"]
        ]
        queue = SweepJobQueue(cache=cache, workers=workers,
                              on_event=on_event)
        points = queue.run(cells)
        records = [p.to_record().as_dict() for p in points]
        response: Dict[str, Any] = {
            "id": req["id"],
            "schema": RESPONSE_SCHEMA,
            "ok": True,
            "records": records,
            "queue": queue.stats.describe(),
        }
        if cache is not None:
            response["cache"] = cache.stats.as_dict()
        return response
    except Exception as exc:  # noqa: BLE001 - failures are data here
        return {"id": req_id, "schema": RESPONSE_SCHEMA, "ok": False,
                "error": f"{type(exc).__name__}: {exc}"}


def serve(in_stream: TextIO, out_stream: TextIO,
          cache: Optional[ResultCache] = None, workers: int = 1,
          err_stream: Optional[TextIO] = None,
          events: bool = False) -> int:
    """Serve JSONL requests until EOF; returns a process exit code.

    Exit code 0 when every request succeeded, 1 when any failed —
    either way the loop drains the whole stream.

    ``events=True`` interleaves the queue's per-cell lifecycle events
    (hit/dedup/miss/start/done) into ``out_stream`` as JSONL progress
    lines — ``{"event": "progress", "id": <request id>, "phase": ...}``
    — ahead of each request's ``{"event": "response", ...}`` line, so
    a streaming client watches cells resolve live.  Off by default:
    the plain protocol stays one response line per request.
    """
    cache = as_cache(cache)
    failures = 0

    def printer(event: Dict[str, Any]) -> None:
        print(f"[serve] {event['phase']:5s} "
              f"{event['index'] + 1}/{event['total']} {event['cell']}",
              file=err_stream, flush=True)

    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        try:
            obj: Any = json.loads(line)
        except ValueError as exc:
            obj = None
            response = {"id": None, "schema": RESPONSE_SCHEMA, "ok": False,
                        "error": f"bad JSON: {exc}"}
        else:
            callbacks = []
            if events:
                req_id = obj.get("id") if isinstance(obj, dict) else None
                callbacks.append(jsonl_event_writer(out_stream, id=req_id))
            if err_stream is not None:
                callbacks.append(printer)
            on_event = ((lambda e: [cb(e) for cb in callbacks])
                        if callbacks else None)
            response = handle_request(obj, cache, workers=workers,
                                      on_event=on_event)
        if not response["ok"]:
            failures += 1
        if events:
            response = {"event": "response", **response}
        print(json.dumps(response, sort_keys=True), file=out_stream,
              flush=True)
    if err_stream is not None and cache is not None:
        print(f"[serve] cache: {cache.stats.describe()}", file=err_stream)
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """Standalone entry (the CLI's ``serve`` command wraps this)."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro-serve")
    parser.add_argument("--cache", default=None)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--requests", default="-")
    args = parser.parse_args(argv)
    cache = ResultCache(args.cache) if args.cache else None
    if args.requests == "-":
        return serve(sys.stdin, sys.stdout, cache, args.workers,
                     err_stream=sys.stderr)
    with open(args.requests) as fh:
        return serve(fh, sys.stdout, cache, args.workers,
                     err_stream=sys.stderr)
