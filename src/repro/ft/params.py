"""Tunables of the fault-tolerance layer.

Every deadline here is simulated seconds.  The defaults are sized for
the bundled machine presets (NIC latencies around a microsecond, RTO
tails around a millisecond) and — more importantly — are mutually
constrained: the agreement gather window must cover the *spread* of
entry times into the agreement, which is bounded by the attempt
timeout (a rank blocked on a corpse only reports after its attempt
deadline) plus the probe budget.  :meth:`FtParams.validate` enforces
the constraint so a hand-tuned configuration cannot silently turn
slow-but-alive ranks into suspects.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FtParams:
    """Knobs of detector, agreement and retry."""

    #: direct-ping ack deadline (SWIM round-trip budget)
    ping_timeout: float = 2e-4
    #: witnesses asked to indirect-probe an unresponsive target
    witnesses: int = 2
    #: most peers the detector pings per aborted attempt
    probe_cap: int = 4
    #: deadline for a collective attempt before it is abandoned
    attempt_timeout: float = 4e-3
    #: attempt-deadline multiplier per retry (exponential backoff)
    backoff: float = 2.0
    #: collective re-issues before FtError (first try included)
    max_attempts: int = 6
    #: coordinator re-elections per agreement before giving up
    max_rounds: int = 8
    #: slack the coordinator's report gather adds on top of the
    #: worst-case entry spread (attempt timeout + probe budget)
    gather_slack: float = 2e-3
    #: extra wait for the decision beyond the gather window
    decide_slack: float = 3e-3
    #: quiesce window at shutdown for in-flight stale traffic to land
    drain: float = 5e-3
    #: suspects one report can carry (fixed wire format)
    max_suspects: int = 8

    def probe_budget(self) -> float:
        """Worst-case detector time per aborted attempt: each probed
        peer costs a direct ping plus a witness window (3 ping RTOs)."""
        return 4.0 * self.ping_timeout * self.probe_cap

    def attempt_deadline(self, attempt: int) -> float:
        """Deadline of the ``attempt``-th try (0-based, backed off)."""
        return self.attempt_timeout * (self.backoff ** attempt)

    def gather_timeout(self, attempt: int) -> float:
        """Report-gather window for an agreement after ``attempt``.

        Must cover the entry spread: a rank whose attempt hung on a
        corpse reports a full attempt deadline (plus probing) later
        than a rank whose attempt succeeded instantly.
        """
        return self.attempt_deadline(attempt) + self.probe_budget() \
            + self.gather_slack

    def decide_timeout(self, attempt: int) -> float:
        """How long a member waits for the coordinator's decision
        before assuming the coordinator died and advancing the round.

        Measured from the member's *own* agreement entry, which may
        precede the coordinator's by the full entry spread (a member
        whose attempt succeeded instantly vs a coordinator that burned
        its attempt deadline blocked on a corpse, then probed).  The
        wait must cover that spread **plus** the coordinator's whole
        gather window, or early finishers re-elect past a live
        coordinator and agree it out of the membership."""
        return self.attempt_deadline(attempt) + self.probe_budget() \
            + self.gather_timeout(attempt) + self.decide_slack

    def validate(self) -> None:
        """Raise ValueError on self-contradictory settings."""
        if self.ping_timeout <= 0 or self.attempt_timeout <= 0:
            raise ValueError("ft timeouts must be positive")
        if self.backoff < 1.0:
            raise ValueError("ft backoff must be >= 1.0")
        if self.max_attempts < 1 or self.max_rounds < 1:
            raise ValueError("ft needs at least one attempt and one round")
        if self.witnesses < 0 or self.probe_cap < 1 or self.max_suspects < 1:
            raise ValueError("ft detector sizes must be positive")
        if self.gather_slack <= 0 or self.decide_slack <= 0:
            raise ValueError(
                "ft agreement slacks must be positive: the gather window "
                "must exceed the attempt-entry spread or slow-but-alive "
                "ranks become suspects"
            )
