"""The fault-tolerant collective engine: detect → agree → shrink → retry.

One :class:`FTRuntime` per armed world.  Every top-level collective
routes through :meth:`run_collective`, which wraps the library's
normal algorithm in a supervised *attempt*:

1. Run the collective as a child process under a per-attempt deadline
   (``attempt_deadline``, exponential backoff per retry).
2. On deadline or a transport give-up, interrupt the attempt, purge
   the data plane, and SWIM-probe the peers this rank was actually
   blocked on (costed detection — real pings, real timeouts).
3. **Always** finish the attempt with an agreement (even a locally
   clean one): the coordinator's gather-with-deadline is the backstop
   detector that catches a corpse nobody happened to be blocked on —
   it is also exactly how ``shrink()`` works, so failed-rank discovery
   needs no extra machinery at scale.
4. Apply the decision everywhere: commit → done; retry → restore the
   snapshot and re-issue on a fresh *epoch* communicator over the
   agreed survivors, via the library's degraded flat algorithms.

Degradation is *sticky* by design: after any recovery the full
hierarchical/PiP path is never reused in this world, because an
interrupted attempt can leave node-barrier generation counts and
shared-memory staging in a state only total order could repair — the
flat point-to-point algorithms assume nothing and are safe.  (A PiP
crash also takes out a whole node's worth of objects: with a
node-scoped library, suspicion of one rank condemns its node-mates —
``expand_crash_scope`` — matching the process-in-process failure
unit.)

Ranks agreed out of the membership but still alive (node-scope
expansion) receive the decision, record themselves in ``excluded``,
and freeze on a never-firing event — the simulated analogue of
``exit()`` — so the blocked-rank report can tell them apart from
bugs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..runtime.communicator import Communicator
from ..sim import Interrupt
from . import heal, proto
from .agreement import Agreement, Decision
from .detector import Detector
from .errors import FtError
from .params import FtParams

#: spec keys that hold buffer views (snapshot/restore targets)
_VIEW_KEYS = ("view", "send", "recv")


def _snapshot_spec(spec: dict) -> Dict[str, object]:
    """Copy-out of every buffer view in ``spec`` (None in timing mode)."""
    return {k: spec[k].read() for k in _VIEW_KEYS
            if spec.get(k) is not None}


def _restore_spec(spec: dict, snap: Dict[str, object]) -> None:
    for k, data in snap.items():
        spec[k].write(data)


def _is_data_plane(env) -> bool:
    return env.comm_id not in (proto.PING_COMM_ID, proto.CTRL_COMM_ID)


class FTRuntime:
    """Per-world fault-tolerance state shared by all rank contexts."""

    def __init__(self, world, params: Optional[FtParams] = None) -> None:
        self.world = world
        self.params = params or FtParams()
        self.params.validate()
        #: dormant unless a fault injector is bound — a dormant layer
        #: adds zero events, so ``ft=True`` without faults is
        #: bit-identical to ``ft=False``
        self.armed = world.faults is not None
        self.world_size = world.cluster.world_size
        ranks = tuple(range(self.world_size))
        self.ping_comm = Communicator(proto.PING_COMM_ID, ranks, "ft-ping")
        self.ctrl_comm = Communicator(proto.CTRL_COMM_ID, ranks, "ft-ctrl")
        world.comms_by_id[proto.PING_COMM_ID] = self.ping_comm
        world.comms_by_id[proto.CTRL_COMM_ID] = self.ctrl_comm
        self.detector = Detector(self)
        self.agreement = Agreement(self)
        #: per-rank collective sequence numbers (identical call order
        #: on every rank, so they agree without communication)
        self._seq = [0] * self.world_size
        #: per-rank membership views, updated only by agreed decisions
        self.views: List[List[int]] = \
            [list(ranks) for _ in range(self.world_size)]
        #: per-rank: this comm has been revoked (clears on next commit)
        self.revoked = [False] * self.world_size
        #: per-rank sticky degradation (see module doc)
        self.degraded = [False] * self.world_size
        #: alive ranks agreed out of the membership, frozen by design
        self.excluded = set()
        #: committed-recovery timelines (what R2 reports)
        self.recoveries: List[dict] = []
        #: structured transport give-ups observed (satellite: surfaced
        #: in recovery spans instead of aborting the simulator)
        self.delivery_errors: List[object] = []
        self._epoch_comms: Dict[Tuple[int, int], Communicator] = {}
        self._started = False
        self.lib = None
        if self.armed and hasattr(world.network, "on_give_up"):
            world.network.on_give_up = self._on_give_up

    # -- plumbing ----------------------------------------------------------
    def _on_give_up(self, err) -> None:
        self.delivery_errors.append(err)
        if self.world.faults is not None:
            self.world.faults.note(
                "give_up", err.src, err.dst, err.nbytes or 0,
                attempt=err.attempts or 0,
                note="flow abandoned; recovery will re-issue")

    def _ensure_started(self) -> None:
        """Spawn every rank's responder once, at the first FT entry.

        Spawning for already-crashed ranks is correct: their responder
        freezes at its first receive's crash gate and never acks.
        """
        if self._started:
            return
        self._started = True
        for c in self.world.contexts:
            self.detector.spawn_responder(c)

    def expand_crash_scope(self, suspected, members) -> set:
        """Widen suspicion to the library's failure unit.

        PiP-based libraries host many ranks as objects of one process:
        one crash takes the whole node down, so suspecting a rank
        condemns its node-mates too.
        """
        if getattr(self.lib, "ft_crash_scope", "rank") != "node":
            return set(suspected)
        cluster = self.world.cluster
        out = set()
        for s in suspected:
            out.update(cluster.ranks_on_node(cluster.node_of(s)))
        return out & set(members)

    def epoch_comm(self, seq: int, attempt: int, members) -> Communicator:
        """The (interned) communicator of re-issue ``(seq, attempt)``.

        Its id is computed locally — every survivor arrives at the
        same communicator without any extra agreement traffic, because
        views only ever change by applying identical decisions.
        """
        key = (seq, attempt)
        comm = self._epoch_comms.get(key)
        if comm is None:
            comm = Communicator(proto.epoch_comm_id(seq, attempt),
                                tuple(members), f"ft-epoch{seq}.{attempt}")
            self._epoch_comms[key] = comm
            self.world.comms_by_id[comm.comm_id] = comm
        return comm

    def _blocked_peers(self, ctx) -> set:
        """World ranks this rank's posted data-plane receives name."""
        peers = set()
        for comm_id, src, tag in ctx.matching.pending_details():
            if comm_id in (proto.PING_COMM_ID, proto.CTRL_COMM_ID):
                continue
            if src < 0:
                continue
            comm = self.world.comms_by_id.get(comm_id)
            if comm is not None and 0 <= src < comm.size:
                peers.add(comm.to_world(src))
        return peers

    # -- the supervised collective ----------------------------------------
    def run_collective(self, ctx, lib, name: str, nbytes: int, spec: dict,
                       comm):
        """Run one collective fault-tolerantly (generator)."""
        self.lib = lib
        self._ensure_started()
        rank = ctx.rank
        params = self.params
        if rank in self.excluded:
            yield ctx.sim.event()  # frozen by an earlier decision
        seq = self._seq[rank]
        self._seq[rank] += 1
        snap = _snapshot_spec(spec)
        t_start = ctx.now
        t_anomaly = t_decision = None
        all_suspected = set()
        last_err = None
        for attempt in range(params.max_attempts):
            members = list(self.views[rank])
            full = (attempt == 0 and len(members) == self.world_size
                    and not self.degraded[rank] and not self.revoked[rank])
            if full:
                algo = lib.wrapped(name, nbytes, self.world_size)
                gen = heal.invoke(ctx, algo, name, spec, comm)
            else:
                ecomm = self.epoch_comm(seq, attempt, members)
                gen = heal.healed(ctx, lib, name, nbytes, spec, ecomm,
                                  members, comm)
            err_mark = len(self.delivery_errors)
            proc = ctx.sim.process(gen, name=f"ft:{name}@{rank}#{attempt}")
            deadline = ctx.sim.timeout(params.attempt_deadline(attempt))
            yield ctx.sim.any_of([proc, deadline])
            new_errs = [e for e in self.delivery_errors[err_mark:]
                        if e.src == rank]
            ok = proc.triggered and not new_errs
            # Decisions reach ranks at staggered times: a fast peer may
            # already be sending on the *next* epoch comm (or the next
            # collective) while this rank is still cleaning up — purging
            # those messages would deadlock the healed attempt, so every
            # purge spares comm ids at or beyond the next epoch.
            horizon = proto.epoch_comm_id(seq, attempt + 1)
            stale = (lambda env: _is_data_plane(env)
                     and env.comm_id < horizon)
            suspects: List[int] = []
            if ok:
                decision = yield from self.agreement.agree(
                    ctx, seq, attempt, True, True, [])
            else:
                if new_errs:
                    last_err = new_errs[-1]
                if t_anomaly is None:
                    t_anomaly = ctx.now
                attrs = {"collective": name, "seq": seq, "attempt": attempt}
                if last_err is not None:
                    attrs.update({f"delivery_{k}": v
                                  for k, v in last_err.context().items()
                                  if v is not None})
                with ctx.span("recovery", cat="recovery", **attrs):
                    targets = self._blocked_peers(ctx)
                    targets |= {e.dst for e in new_errs if e.dst is not None}
                    targets.discard(rank)
                    targets &= set(members)
                    if not proc.triggered:
                        proc.interrupt()
                        try:
                            yield proc  # surface real bugs, not Interrupts
                        except Interrupt:
                            pass
                    ctx.matching.purge(stale)
                    with ctx.span("detect", cat="detect", collective=name,
                                  attempt=attempt):
                        suspects = yield from self.detector.probe(
                            ctx, sorted(targets), seq, attempt)
                    decision = yield from self.agreement.agree(
                        ctx, seq, attempt, False, True, suspects)
            if t_decision is None and (not decision.commit
                                       or decision.rnd > 0 or not ok):
                t_decision = ctx.now
            all_suspected.update(m for m in members
                                 if m not in decision.members)
            self.views[rank] = list(decision.members)
            if rank not in decision.members:
                self.excluded.add(rank)
                yield ctx.sim.event()  # agreed out: freeze, by design
            if decision.commit:
                self.revoked[rank] = False
                if attempt > 0 or t_anomaly is not None:
                    self.recoveries.append({
                        "rank": rank, "seq": seq, "collective": name,
                        "attempts": attempt + 1,
                        "t_start": t_start, "t_anomaly": t_anomaly,
                        "t_decision": t_decision, "t_committed": ctx.now,
                        "suspects": sorted(all_suspected),
                        "members_after": list(decision.members),
                        "delivery_error": (last_err.context()
                                           if last_err is not None else None),
                    })
                return
            # Retry: sticky degradation, fresh epoch, pristine buffers.
            self.degraded[rank] = True
            self.revoked[rank] = False
            ctx.matching.purge(stale)
            _restore_spec(spec, snap)
        raise FtError(
            f"rank {rank}: collective #{seq} ({name}) still failing after "
            f"{params.max_attempts} attempts", last_delivery_error=last_err)

    # -- user-facing comm operations (ULFM analogues) ----------------------
    def agree(self, ctx, flag: bool = True):
        """Crash-tolerant agreement on ``flag`` (generator): the AND of
        every surviving participant's flag, with failed ranks agreed
        out of the membership along the way (MPI_Comm_agree)."""
        if not self.armed:
            return bool(flag)
        self._ensure_started()
        rank = ctx.rank
        if rank in self.excluded:
            yield ctx.sim.event()
        seq = self._seq[rank]
        self._seq[rank] += 1
        decision = yield from self.agreement.agree(
            ctx, seq, 0, True, bool(flag), [])
        self.views[rank] = list(decision.members)
        if rank not in decision.members:
            self.excluded.add(rank)
            yield ctx.sim.event()
        if not decision.commit:
            self.degraded[rank] = True
        self.revoked[rank] = False
        return decision.flag

    def shrink(self, ctx):
        """Agree on the surviving membership (generator; returns the
        world-rank list).  Exactly one agreement: the coordinator's
        gather deadline *is* the failed-rank discovery
        (MPI_Comm_shrink)."""
        if not self.armed:
            return list(range(self.world_size))
        flag = yield from self.agree(ctx, True)  # noqa: F841
        return list(self.views[ctx.rank])

    def revoke(self, ctx):
        """Notify every peer's responder that the communicator is
        revoked (generator; MPI_Comm_revoke).  Forces the next
        collective off the full-membership fast path and through an
        agreement, after which the revocation clears."""
        if not self.armed:
            return
        self._ensure_started()
        rank = ctx.rank
        self.revoked[rank] = True
        payload = proto.ping_payload(proto.REVOKE, rank, -1, 0)
        for member in self.views[rank]:
            if member != rank:
                yield from ctx.send(payload.view(), dst=member, tag=0,
                                    comm=self.ping_comm)

    # -- shutdown ----------------------------------------------------------
    def rank_shutdown(self, ctx):
        """Per-rank teardown after the application body (generator):
        drain stragglers, retire the responder, drop leftover posted
        receives so quiescence checks stay meaningful."""
        if not self.armed:
            return
        rank = ctx.rank
        if rank in self.excluded:
            return
        faults = self.world.faults
        if faults is not None and faults.is_crashed(rank, ctx.now):
            return
        yield ctx.sim.timeout(self.params.drain)
        self.detector.stop_responder(ctx)
        ctx.matching.purge(lambda env: True)
