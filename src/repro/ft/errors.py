"""Errors of the fault-tolerance layer."""

from __future__ import annotations

from ..runtime.errors import MpiError


class FtError(MpiError):
    """Recovery gave up: attempts or agreement rounds exhausted.

    ``last_delivery_error`` carries the final structured
    :class:`~repro.runtime.errors.DeliveryFailedError` the transport
    reported during the failed collective, when there was one.
    """

    def __init__(self, message: str, last_delivery_error=None) -> None:
        super().__init__(message)
        self.last_delivery_error = last_delivery_error


class FtRootLostError(FtError):
    """A rooted collective cannot be healed: the root is dead.

    ULFM semantics: shrinking cannot conjure the root's data back, so
    bcast/scatter from (or gather/reduce to) a crashed root raises on
    the survivors instead of silently returning garbage.
    """
