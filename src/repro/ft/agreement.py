"""Crash-tolerant agreement: gather reports, decide, broadcast.

One agreement round: every member sends its REPORT (attempt outcome,
agreed flag bit, suspect list) to the round's *coordinator* — member
``round % |M|`` of the current membership — which gathers with a
deadline, folds silence into suspicion (a member that cannot even
report inside the gather window after its own attempt deadline is
treated as dead: that is what catches a corpse nobody happened to be
directly blocked on), and broadcasts a DECIDE carrying commit/retry,
the ANDed flag, and the new membership bitmap.  Members that miss the
decision inside their decide window assume the coordinator died and
advance to the next round — re-election by rotation, the standard
crash-tolerant trick.

Timing contract (enforced by :meth:`FtParams.validate` and sized per
attempt): ``gather_timeout`` exceeds the worst-case spread of entry
times into the agreement, and ``decide_timeout`` exceeds
``gather_timeout`` plus broadcast flight — so an *alive* coordinator
always decides before any member gives up on it, and all members
apply the same decision.  A coordinator crashing mid-broadcast can
split the decision between members; that residual window is the
documented limitation (as for any non-consensus single-coordinator
protocol) and is closed in practice by the next collective's
agreement.
"""

from __future__ import annotations

from typing import List, Sequence

from ..runtime.buffer import ArrayBuffer
from . import proto
from .detector import _wait_deadline
from .errors import FtError


class Decision:
    """What one agreement settled on."""

    __slots__ = ("commit", "flag", "members", "rnd")

    def __init__(self, commit: bool, flag: bool, members: List[int],
                 rnd: int) -> None:
        self.commit = commit
        self.flag = flag
        self.members = members
        self.rnd = rnd


class Agreement:
    """Per-world agreement engine; all methods are rank-generic."""

    def __init__(self, ft) -> None:
        self.ft = ft
        self.params = ft.params

    # -- member side -------------------------------------------------------
    def agree(self, ctx, seq: int, attempt: int, ok: bool, flag: bool,
              suspects: Sequence[int]):
        """Run the agreement for ``(seq, attempt)`` (generator).

        Returns the :class:`Decision` every surviving member converges
        on.  ``ok`` is this rank's attempt outcome, ``flag`` its
        ``agree()`` bit (True when unused), ``suspects`` what its
        detector found.
        """
        ft = self.ft
        params = self.params
        rank = ctx.rank
        members = list(ft.views[rank])
        for rnd in range(params.max_rounds):
            coordinator = members[rnd % len(members)]
            if rank == coordinator:
                decision = yield from self._coordinate(
                    ctx, seq, attempt, rnd, members, ok, flag, suspects)
                return decision
            report = proto.report_payload(seq, attempt, rnd, ok, flag,
                                          suspects, params.max_suspects)
            yield from ctx.send(report.view(), dst=coordinator,
                                tag=proto.agree_tag(seq, attempt, rnd, False),
                                comm=ft.ctrl_comm)
            dtag = proto.agree_tag(seq, attempt, rnd, True)
            dbuf = ArrayBuffer.zeros(proto.decision_nbytes(ft.world_size))
            req = yield from ctx.irecv(dbuf.view(), src=coordinator,
                                       tag=dtag, comm=ft.ctrl_comm)
            got = yield from _wait_deadline(ctx, req,
                                            params.decide_timeout(attempt))
            if got is not None:
                _s, _a, _r, commit, dflag, new_members = \
                    proto.decode_decision(dbuf, ft.world_size)
                return Decision(commit, dflag, new_members, rnd)
            # Coordinator silent past its whole window: presume it dead,
            # drop it from our local view for the re-election and try
            # the next coordinator in rotation.
            ctx.matching.purge(
                lambda env: env.comm_id == proto.CTRL_COMM_ID
                and env.tag == dtag)
            suspects = sorted(set(suspects) | {coordinator})
        raise FtError(
            f"rank {rank}: agreement for collective #{seq} attempt "
            f"{attempt} exhausted {params.max_rounds} coordinator rounds")

    # -- coordinator side --------------------------------------------------
    def _coordinate(self, ctx, seq: int, attempt: int, rnd: int,
                    members: List[int], ok: bool, flag: bool,
                    suspects: Sequence[int]):
        ft = self.ft
        params = self.params
        rank = ctx.rank
        rtag = proto.agree_tag(seq, attempt, rnd, False)
        reports = {rank: (ok, flag, list(suspects))}
        pending = {}
        for member in members:
            if member == rank:
                continue
            buf = ArrayBuffer.zeros(proto.report_nbytes(params.max_suspects))
            req = yield from ctx.irecv(buf.view(), src=member, tag=rtag,
                                       comm=ft.ctrl_comm)
            pending[member] = (req, buf)
        deadline = ctx.sim.timeout(params.gather_timeout(attempt))
        while pending and not deadline.processed:
            signals = [req._signal() for req, _b in pending.values()
                       if not req.ready]
            if signals:
                yield ctx.sim.any_of(signals + [deadline])
            for member in list(pending):
                req, buf = pending[member]
                if req.ready:
                    yield from ctx.wait(req)
                    _s, _a, _r, m_ok, m_flag, m_sus = proto.decode_report(buf)
                    reports[member] = (m_ok, m_flag, m_sus)
                    del pending[member]
        # Final sweep: a report that raced the deadline still counts.
        for member in list(pending):
            req, buf = pending[member]
            if req.ready:
                yield from ctx.wait(req)
                _s, _a, _r, m_ok, m_flag, m_sus = proto.decode_report(buf)
                reports[member] = (m_ok, m_flag, m_sus)
                del pending[member]
        if pending:
            ctx.matching.purge(
                lambda env: env.comm_id == proto.CTRL_COMM_ID
                and env.tag == rtag)
        silent = [m for m in members if m not in reports]
        suspected = set(silent)
        for _ok, _flag, m_sus in reports.values():
            suspected.update(m_sus)
        # The coordinator is self-evidently alive; peers that probed it
        # while it was busy gathering must not vote it out.
        suspected.discard(rank)
        suspected &= set(members)
        suspected = ft.expand_crash_scope(suspected, members)
        new_members = [m for m in members if m not in suspected]
        all_ok = all(m_ok for m_ok, _f, _s in reports.values())
        commit = all_ok and not suspected
        agreed_flag = all(m_flag for _ok, m_flag, _s in reports.values())
        decision = proto.decision_payload(
            seq, attempt, rnd, commit, agreed_flag, new_members,
            ft.world_size)
        dtag = proto.agree_tag(seq, attempt, rnd, True)
        # Everyone gets the decision — including members being excluded,
        # so they learn their fate and freeze instead of hanging.
        for member in members:
            if member != rank:
                yield from ctx.send(decision.view(), dst=member, tag=dtag,
                                    comm=ft.ctrl_comm)
        return Decision(commit, agreed_flag, new_members, rnd)
