"""Fault-tolerant runtime: detection, shrink/agree, self-healing.

A ULFM-inspired layer over the simulated runtime (see
``docs/FAULT_TOLERANCE.md``):

* :class:`Detector` — SWIM-style heartbeat failure detection riding
  the normal transport (costed, deterministic).
* :class:`Agreement` — crash-tolerant gather/decide with coordinator
  re-election by rotation.
* :class:`FTRuntime` — supervised collectives: detect → revoke →
  agree → shrink → re-issue on the surviving membership, with graceful
  degradation of hierarchical/multi-object algorithms to flat
  point-to-point.

Arm it with ``Session(..., ft=True, faults=<injector>)``; without a
fault injector the layer stays dormant and adds zero events.
"""

from .agreement import Agreement, Decision
from .detector import Detector, pick_witnesses
from .errors import FtError, FtRootLostError
from .params import FtParams
from .runtime import FTRuntime

__all__ = [
    "Agreement",
    "Decision",
    "Detector",
    "FTRuntime",
    "FtError",
    "FtParams",
    "FtRootLostError",
    "pick_witnesses",
]
