"""Wire format of the fault-tolerance control plane.

The layer reserves two control communicators over all world ranks plus
a family of per-``(collective seq, attempt)`` *epoch* communicators:

* **ping comm** (``PING_COMM_ID``): carries PING / indirect-probe
  requests / REVOKE notices.  Each rank's responder coroutine keeps a
  wildcard receive posted here — and *only* here, so the wildcard can
  never steal data-plane or reply traffic (MPI matching is per
  communicator).
* **ctrl comm** (``CTRL_COMM_ID``): carries ack / indirect-probe
  replies and the agreement's REPORT / DECIDE messages, all on exact
  ``(src, tag)`` patterns whose tags encode the full context
  (sequence, attempt, round, or a per-rank nonce), so a stale reply
  can never alias a fresh wait.
* **epoch comms** (``EPOCH_COMM_BASE + seq * 64 + attempt``): each
  re-issued collective attempt runs on a fresh communicator computed
  locally from ``(seq, attempt)`` — no agreement traffic needed — so
  messages of an abandoned attempt can never match into its retry.

All control payloads are little arrays of ``int64`` / ``uint64`` in
:class:`~repro.runtime.buffer.ArrayBuffer` (always numpy-backed, so
the control plane stays functional even in size-only timing worlds).
Membership in a DECIDE rides as a bitmap over the *original* world
ranks.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..runtime.buffer import ArrayBuffer

#: control-comm ids, far above any interned split id
PING_COMM_ID = 0x3FFFFFFF
CTRL_COMM_ID = 0x3FFFFFFE
#: epoch comm id = EPOCH_COMM_BASE + seq * EPOCH_STRIDE + attempt
EPOCH_COMM_BASE = 0x40000000
EPOCH_STRIDE = 64

#: ping-comm message kinds
PING, PREQ, REVOKE = 1, 2, 3

#: ctrl-comm tag spaces (Python ints are unbounded; collisions between
#: the spaces are impossible because each space carries its base)
AGREE_TAG_BASE = 0x10000000
REPLY_TAG_BASE = 0x20000000


def epoch_comm_id(seq: int, attempt: int) -> int:
    if not 0 <= attempt < EPOCH_STRIDE:
        raise ValueError(f"attempt {attempt} outside epoch stride")
    return EPOCH_COMM_BASE + seq * EPOCH_STRIDE + attempt


def agree_tag(seq: int, attempt: int, rnd: int, decide: bool) -> int:
    """Tag of a REPORT (``decide=False``) or DECIDE message."""
    return AGREE_TAG_BASE + ((seq * EPOCH_STRIDE + attempt) * 64 + rnd) * 2 \
        + (1 if decide else 0)


def reply_tag(rank: int, nonce: int, world_size: int) -> int:
    """A never-reused ack/probe-reply tag owned by ``rank``."""
    return REPLY_TAG_BASE + nonce * world_size + rank


# -- ping-comm payloads (4 x int64) -------------------------------------
def ping_payload(kind: int, sender: int, target: int, rtag: int) -> ArrayBuffer:
    return ArrayBuffer.from_array(
        np.array([kind, sender, target, rtag], dtype=np.int64))


def decode_ping(buf: ArrayBuffer) -> Tuple[int, int, int, int]:
    kind, sender, target, rtag = buf.bytes_view.view(np.int64)[:4]
    return int(kind), int(sender), int(target), int(rtag)


PING_NBYTES = 32


# -- ack / probe-reply payloads (2 x int64) -----------------------------
def reply_payload(sender: int, alive: bool) -> ArrayBuffer:
    return ArrayBuffer.from_array(
        np.array([sender, 1 if alive else 0], dtype=np.int64))


def decode_reply(buf: ArrayBuffer) -> Tuple[int, bool]:
    sender, alive = buf.bytes_view.view(np.int64)[:2]
    return int(sender), bool(alive)


REPLY_NBYTES = 16


# -- agreement REPORT: [seq, attempt, rnd, ok, flag, n, suspects...] ----
def report_nbytes(max_suspects: int) -> int:
    return 8 * (6 + max_suspects)


def report_payload(seq: int, attempt: int, rnd: int, ok: bool, flag: bool,
                   suspects: Sequence[int], max_suspects: int) -> ArrayBuffer:
    sus = list(suspects)[:max_suspects]
    arr = np.zeros(6 + max_suspects, dtype=np.int64)
    arr[:6] = [seq, attempt, rnd, 1 if ok else 0, 1 if flag else 0, len(sus)]
    arr[6:6 + len(sus)] = sus
    return ArrayBuffer.from_array(arr)


def decode_report(buf: ArrayBuffer) -> Tuple[int, int, int, bool, bool, List[int]]:
    arr = buf.bytes_view.view(np.int64)
    seq, attempt, rnd, ok, flag, n = (int(v) for v in arr[:6])
    return seq, attempt, rnd, bool(ok), bool(flag), [int(v) for v in arr[6:6 + n]]


# -- agreement DECIDE: [seq, attempt, rnd, commit, flag] + bitmap -------
def decision_nbytes(world_size: int) -> int:
    words = (world_size + 63) // 64
    return 8 * (5 + words)


def decision_payload(seq: int, attempt: int, rnd: int, commit: bool,
                     flag: bool, members: Sequence[int],
                     world_size: int) -> ArrayBuffer:
    words = (world_size + 63) // 64
    arr = np.zeros(5 + words, dtype=np.uint64)
    arr[:5] = [seq, attempt, rnd, 1 if commit else 0, 1 if flag else 0]
    for m in members:
        arr[5 + (m >> 6)] |= np.uint64(1 << (m & 63))
    return ArrayBuffer.from_array(arr)


def decode_decision(buf: ArrayBuffer, world_size: int):
    arr = buf.bytes_view.view(np.uint64)
    seq, attempt, rnd, commit, flag = (int(v) for v in arr[:5])
    members = [m for m in range(world_size)
               if int(arr[5 + (m >> 6)]) >> (m & 63) & 1]
    return seq, attempt, rnd, bool(commit), bool(flag), members
