"""Healed re-issue of collectives on a shrunken membership.

After a shrink, the original collective's semantics must be delivered
to the survivors with the *original* rank positions: block ``i`` of an
allgather result still belongs to original rank ``i``, a scan prefix
still covers original ranks ``0..i``.  The adapters here run the
library's degraded (flat, geometry-agnostic) algorithm over a compact
epoch communicator of the survivors, packing/unpacking around it so
original-position semantics hold; crashed ranks' blocks are simply
left untouched in the survivors' buffers (their content is whatever
the caller initialised — MPI gives no stronger guarantee once a
contributor died).

Rooted collectives (bcast/gather/scatter/reduce and their v-variants)
require the root among the survivors — there is no healing a dead
root's data — else :class:`~repro.ft.errors.FtRootLostError`.

Prefix collectives need no packing at all: survivors in ascending
original order compute exactly the original-order prefix over the
surviving contributions.
"""

from __future__ import annotations

from typing import List, Optional

from ..collectives.base import local_copy
from .errors import FtRootLostError


def invoke(ctx, algo, name: str, spec: dict, comm):
    """Call ``algo`` with the calling convention of its family.

    ``spec`` is the family-keyed argument dict built by
    :class:`~repro.api.VComm` (views, dtype/op, root, counts).  Used
    for both the plain full-membership path and healed re-issues.
    """
    if name == "barrier":
        yield from algo(ctx, comm=comm)
    elif name == "bcast":
        yield from algo(ctx, spec["view"], root=spec["root"], comm=comm)
    elif name == "gather":
        yield from algo(ctx, spec["send"], spec.get("recv"),
                        root=spec["root"], comm=comm)
    elif name == "scatter":
        yield from algo(ctx, spec.get("send"), spec["recv"],
                        root=spec["root"], comm=comm)
    elif name in ("allgather", "alltoall"):
        yield from algo(ctx, spec["send"], spec["recv"], comm=comm)
    elif name in ("allreduce", "reduce_scatter", "scan", "exscan"):
        yield from algo(ctx, spec["send"], spec["recv"], spec["dtype"],
                        spec["op"], comm=comm)
    elif name == "reduce":
        yield from algo(ctx, spec["send"], spec.get("recv"), spec["dtype"],
                        spec["op"], root=spec["root"], comm=comm)
    elif name == "gatherv":
        yield from algo(ctx, spec["send"], spec.get("recv"),
                        counts=spec.get("counts"), root=spec["root"],
                        comm=comm)
    elif name == "scatterv":
        yield from algo(ctx, spec.get("send"), counts=spec.get("counts"),
                        recvview=spec["recv"], root=spec["root"], comm=comm)
    elif name == "allgatherv":
        yield from algo(ctx, spec["send"], spec["recv"], spec["counts"],
                        comm=comm)
    elif name == "alltoallv":
        yield from algo(ctx, spec["send"], spec["send_counts"], spec["recv"],
                        spec["recv_counts"], comm=comm)
    else:
        raise KeyError(f"no invoker for collective {name!r}")


def _displs(counts: List[int]) -> List[int]:
    out, acc = [], 0
    for c in counts:
        out.append(acc)
        acc += c
    return out


ROOTED = ("bcast", "gather", "scatter", "reduce", "gatherv", "scatterv")


def healed(ctx, lib, name: str, nbytes: int, spec: dict, ecomm,
           survivors: List[int], orig_comm):
    """Re-issue ``name`` over the survivors (generator).

    ``survivors`` are original comm ranks, ascending; ``ecomm`` is the
    epoch communicator over exactly those ranks.  ``orig_comm`` is the
    communicator the collective was first issued on (original-position
    geometry).
    """
    n = orig_comm.size
    m = len(survivors)
    orank = orig_comm.to_comm(ctx.rank)
    algo = lib.degraded_algorithm(name, nbytes, m)
    root: Optional[int] = spec.get("root")
    eroot: Optional[int] = None
    if name in ROOTED:
        if root not in survivors:
            raise FtRootLostError(
                f"rank {ctx.rank}: cannot heal {name}: root (original "
                f"rank {root}) is dead — its data is unrecoverable")
        eroot = survivors.index(root)

    if name == "barrier":
        yield from algo(ctx, comm=ecomm)
        return

    if name == "bcast":
        yield from algo(ctx, spec["view"], root=eroot, comm=ecomm)
        return

    if name in ("allreduce", "scan", "exscan"):
        # Elementwise over surviving contributions; for the prefix
        # forms, ascending epoch order *is* ascending original order,
        # so the epoch prefix equals the original-order prefix over
        # the survivors (dead ranks simply stop contributing).
        yield from algo(ctx, spec["send"], spec["recv"], spec["dtype"],
                        spec["op"], comm=ecomm)
        return

    if name == "reduce":
        recv = spec.get("recv") if orank == root else None
        yield from algo(ctx, spec["send"], recv, spec["dtype"], spec["op"],
                        root=eroot, comm=ecomm)
        return

    if name in ("gather", "gatherv"):
        counts = (spec.get("counts") if name == "gatherv"
                  else [spec["send"].nbytes] * n)
        # Root gathers the survivors' blocks compactly, then spreads
        # them to their original displacements.
        if orank == root:
            if counts is None:
                raise ValueError(f"{name}: root needs counts to heal")
            ecounts = [counts[s] for s in survivors]
            tmp = ctx.alloc(sum(ecounts))
            yield from _call_gatherv(ctx, lib, nbytes, spec["send"],
                                     tmp.view(), ecounts, eroot, ecomm, m)
            odispls = _displs(counts)
            edispls = _displs(ecounts)
            recv = spec["recv"]
            for i, s in enumerate(survivors):
                if ecounts[i]:
                    yield from local_copy(
                        ctx, tmp.view(edispls[i], ecounts[i]),
                        recv.sub(odispls[s], ecounts[i]))
        else:
            yield from _call_gatherv(ctx, lib, nbytes, spec["send"], None,
                                     None, eroot, ecomm, m)
        return

    if name in ("scatter", "scatterv"):
        counts = (spec.get("counts") if name == "scatterv"
                  else [spec["recv"].nbytes] * n)
        if orank == root:
            if counts is None:
                raise ValueError(f"{name}: root needs counts to heal")
            ecounts = [counts[s] for s in survivors]
            send = spec["send"]
            odispls = _displs(counts)
            edispls = _displs(ecounts)
            tmp = ctx.alloc(sum(ecounts))
            for i, s in enumerate(survivors):
                if ecounts[i]:
                    yield from local_copy(
                        ctx, send.sub(odispls[s], ecounts[i]),
                        tmp.view(edispls[i], ecounts[i]))
            yield from _call_scatterv(ctx, lib, nbytes, tmp.view(), ecounts,
                                      spec["recv"], eroot, ecomm, m)
        else:
            yield from _call_scatterv(ctx, lib, nbytes, None, None,
                                      spec["recv"], eroot, ecomm, m)
        return

    if name in ("allgather", "allgatherv"):
        counts = (spec["counts"] if name == "allgatherv"
                  else [spec["send"].nbytes] * n)
        ecounts = [counts[s] for s in survivors]
        tmp = ctx.alloc(sum(ecounts))
        agv = lib.degraded_algorithm("allgatherv", nbytes, m)
        yield from agv(ctx, spec["send"], tmp.view(), ecounts, comm=ecomm)
        odispls = _displs(counts)
        edispls = _displs(ecounts)
        recv = spec["recv"]
        for i, s in enumerate(survivors):
            if ecounts[i]:
                yield from local_copy(ctx, tmp.view(edispls[i], ecounts[i]),
                                      recv.sub(odispls[s], ecounts[i]))
        return

    if name == "reduce_scatter":
        # Pack the survivors' blocks of my contribution, reduce-scatter
        # compactly, and my own block arrives directly in place.
        blk = spec["recv"].nbytes
        send = spec["send"]
        tmp = ctx.alloc(blk * m)
        for i, s in enumerate(survivors):
            yield from local_copy(ctx, send.sub(blk * s, blk),
                                  tmp.view(blk * i, blk))
        yield from algo(ctx, tmp.view(), spec["recv"], spec["dtype"],
                        spec["op"], comm=ecomm)
        return

    if name == "alltoall":
        blk = spec["send"].nbytes // n
        send, recv = spec["send"], spec["recv"]
        stmp = ctx.alloc(blk * m)
        rtmp = ctx.alloc(blk * m)
        for i, s in enumerate(survivors):
            yield from local_copy(ctx, send.sub(blk * s, blk),
                                  stmp.view(blk * i, blk))
        a2a = lib.degraded_algorithm("alltoall", blk, m)
        yield from a2a(ctx, stmp.view(), rtmp.view(), comm=ecomm)
        for i, s in enumerate(survivors):
            yield from local_copy(ctx, rtmp.view(blk * i, blk),
                                  recv.sub(blk * s, blk))
        return

    if name == "alltoallv":
        scounts, rcounts = spec["send_counts"], spec["recv_counts"]
        es = [scounts[s] for s in survivors]
        er = [rcounts[s] for s in survivors]
        sod, rod = _displs(scounts), _displs(rcounts)
        sed, red = _displs(es), _displs(er)
        send, recv = spec["send"], spec["recv"]
        stmp = ctx.alloc(max(sum(es), 1))
        rtmp = ctx.alloc(max(sum(er), 1))
        for i, s in enumerate(survivors):
            if es[i]:
                yield from local_copy(ctx, send.sub(sod[s], es[i]),
                                      stmp.view(sed[i], es[i]))
        a2av = lib.degraded_algorithm("alltoallv", nbytes, m)
        yield from a2av(ctx, stmp.view(0, sum(es)), es,
                        rtmp.view(0, sum(er)), er, comm=ecomm)
        for i, s in enumerate(survivors):
            if er[i]:
                yield from local_copy(ctx, rtmp.view(red[i], er[i]),
                                      recv.sub(rod[s], er[i]))
        return

    raise KeyError(f"no heal adapter for collective {name!r}")


def _call_gatherv(ctx, lib, nbytes, send, recv, ecounts, eroot, ecomm, m):
    algo = lib.degraded_algorithm("gatherv", nbytes, m)
    yield from algo(ctx, send, recv, counts=ecounts, root=eroot, comm=ecomm)


def _call_scatterv(ctx, lib, nbytes, send, ecounts, recv, eroot, ecomm, m):
    algo = lib.degraded_algorithm("scatterv", nbytes, m)
    yield from algo(ctx, send, counts=ecounts, recvview=recv, root=eroot,
                    comm=ecomm)
