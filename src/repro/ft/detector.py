"""SWIM-style failure detector riding the normal transport.

Detection is *costed and honest*: a suspect is only ever produced by
real (simulated) message exchanges timing out — the detector never
peeks at the fault plan.  Per SWIM, an unresponsive peer gets a second
chance through ``witnesses`` indirect probes before it is suspected,
which keeps one busy responder from being mistaken for a corpse.

Each rank runs one *responder* coroutine holding a wildcard receive on
the ping communicator; it answers PINGs with an ack on the control
communicator, serves indirect-probe requests (PREQ) by pinging the
target itself, and applies REVOKE notices.  Probe replies travel on
per-``(rank, nonce)`` tags, so a stale ack from a slow peer can never
satisfy a later probe's wait.
"""

from __future__ import annotations

from typing import List, Optional

from ..runtime.buffer import ArrayBuffer
from ..sim import Interrupt
from . import proto


def _wait_deadline(ctx, req, timeout_s: float):
    """Wait for ``req`` at most ``timeout_s``; its result or None.

    The request stays posted on timeout — callers purge it.
    """
    if not req.ready:
        signal = req._signal()
        if signal is not None and not signal.processed:
            timer = ctx.sim.timeout(timeout_s)
            yield ctx.sim.any_of([signal, timer])
    if req.ready:
        result = yield from ctx.wait(req)
        return result
    return None


def pick_witnesses(members, prober: int, target: int, seq: int,
                   attempt: int, count: int) -> List[int]:
    """Deterministic pseudo-random witness choice.

    Seeded entirely by the probe's identity so every run of the same
    schedule picks the same witnesses (reproducible chaos), without
    consuming any global RNG state.
    """
    pool = [m for m in members if m not in (prober, target)]
    if not pool or count <= 0:
        return []
    h = (seq * 1000003) ^ (attempt * 10007) ^ (prober * 101) ^ (target * 7919)
    h &= 0x7FFFFFFF
    picked = []
    for i in range(min(count, len(pool))):
        h = (h * 1103515245 + 12345) & 0x7FFFFFFF
        idx = h % len(pool)
        picked.append(pool.pop(idx))
    return picked


class Detector:
    """Per-world detector state; all methods are rank-generic."""

    def __init__(self, ft) -> None:
        self.ft = ft
        self.params = ft.params
        #: per-rank nonce counters feeding the reply-tag space
        self._nonce = [0] * ft.world.cluster.world_size
        #: per-rank responder Process handles (for shutdown interrupts)
        self.responders: List[Optional[object]] = \
            [None] * ft.world.cluster.world_size
        #: direct + indirect probes issued (telemetry)
        self.pings_sent = 0

    def _next_reply_tag(self, rank: int) -> int:
        self._nonce[rank] += 1
        return proto.reply_tag(rank, self._nonce[rank], self.ft.world_size)

    # -- probing -----------------------------------------------------------
    def ping(self, ctx, target: int, timeout_s: Optional[float] = None):
        """Direct ping (generator): True iff ``target`` acked in time."""
        ft = self.ft
        rtag = self._next_reply_tag(ctx.rank)
        ack = ArrayBuffer.zeros(proto.REPLY_NBYTES)
        req = yield from ctx.irecv(ack.view(), src=target, tag=rtag,
                                   comm=ft.ctrl_comm)
        self.pings_sent += 1
        payload = proto.ping_payload(proto.PING, ctx.rank, target, rtag)
        yield from ctx.send(payload.view(), dst=target, tag=0,
                            comm=ft.ping_comm)
        result = yield from _wait_deadline(
            ctx, req, timeout_s if timeout_s is not None
            else self.params.ping_timeout)
        if result is None:
            ctx.matching.purge(
                lambda env: env.comm_id == proto.CTRL_COMM_ID
                and env.tag == rtag)
            return False
        return True

    def indirect_probe(self, ctx, target: int, seq: int, attempt: int):
        """Ask witnesses to ping ``target``; True iff one found it alive."""
        ft = self.ft
        params = self.params
        members = ft.views[ctx.rank]
        witnesses = pick_witnesses(members, ctx.rank, target, seq, attempt,
                                   params.witnesses)
        if not witnesses:
            return False
        reqs = []
        tags = []
        for wit in witnesses:
            rtag = self._next_reply_tag(ctx.rank)
            buf = ArrayBuffer.zeros(proto.REPLY_NBYTES)
            req = yield from ctx.irecv(buf.view(), src=wit, tag=rtag,
                                       comm=ft.ctrl_comm)
            reqs.append((wit, req, buf))
            tags.append(rtag)
            payload = proto.ping_payload(proto.PREQ, ctx.rank, target, rtag)
            yield from ctx.send(payload.view(), dst=wit, tag=0,
                                comm=ft.ping_comm)
        # A witness serving one nested ping already may take up to a
        # ping round trip to even start ours: budget three.
        deadline = ctx.sim.timeout(3.0 * params.ping_timeout)
        alive = False
        pending = list(reqs)
        while pending and not deadline.processed and not alive:
            signals = [r._signal() for _w, r, _b in pending if not r.ready]
            if signals:
                yield ctx.sim.any_of(signals + [deadline])
            still = []
            for wit, req, buf in pending:
                if req.ready:
                    yield from ctx.wait(req)
                    _sender, found = proto.decode_reply(buf)
                    alive = alive or found
                else:
                    still.append((wit, req, buf))
            pending = still
        drop = set(tags)
        ctx.matching.purge(
            lambda env: env.comm_id == proto.CTRL_COMM_ID and env.tag in drop)
        return alive

    def probe(self, ctx, targets, seq: int, attempt: int):
        """SWIM probe each target (capped); returns the suspects."""
        suspects = []
        for target in list(targets)[:self.params.probe_cap]:
            alive = yield from self.ping(ctx, target)
            if not alive:
                alive = yield from self.indirect_probe(ctx, target, seq,
                                                       attempt)
            if not alive:
                suspects.append(target)
        return suspects

    # -- the responder -----------------------------------------------------
    def spawn_responder(self, ctx) -> None:
        if self.responders[ctx.rank] is None:
            self.responders[ctx.rank] = ctx.sim.process(
                self._responder(ctx), name=f"ft-responder@{ctx.rank}")

    def _responder(self, ctx):
        ft = self.ft
        buf = ArrayBuffer.zeros(proto.PING_NBYTES)
        try:
            while True:
                yield from ctx.recv(buf.view(), src=-1, tag=-1,
                                    comm=ft.ping_comm)
                kind, sender, target, rtag = proto.decode_ping(buf)
                if kind == proto.PING:
                    reply = proto.reply_payload(ctx.rank, True)
                    yield from ctx.send(reply.view(), dst=sender, tag=rtag,
                                        comm=ft.ctrl_comm)
                elif kind == proto.PREQ:
                    alive = yield from self.ping(ctx, target)
                    reply = proto.reply_payload(ctx.rank, alive)
                    yield from ctx.send(reply.view(), dst=sender, tag=rtag,
                                        comm=ft.ctrl_comm)
                elif kind == proto.REVOKE:
                    ft.revoked[ctx.rank] = True
        except Interrupt:
            return

    def stop_responder(self, ctx) -> None:
        proc = self.responders[ctx.rank]
        if proc is not None and not proc.triggered:
            proc.interrupt()
        self.responders[ctx.rank] = None
