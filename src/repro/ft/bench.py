"""Recovery benchmarking: time-to-detect / time-to-recover / slowdown.

The R2 benchmark (``benchmarks/test_r2_recovery.py``) and the
``python -m repro ft`` CLI both run :func:`recovery_point`: a fixed
number of rounds of one collective under ``ft=True`` with a seeded
crash plan, timed per round with in-simulation clock deltas (never a
post-crash barrier — a plain barrier over the original membership
would hang by definition).  The committed-recovery timelines the
:class:`~repro.ft.runtime.FTRuntime` records are then reduced to the
paper-style triple:

* ``detect_s`` — crash instant → first survivor's local anomaly
  (attempt deadline or transport give-up);
* ``recover_s`` — crash instant → last survivor's committed
  re-issue (detection + probing + agreement + healed re-run);
* ``slowdown`` — mean post-recovery round time over mean pre-crash
  round time: the price of running shrunken and degraded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..faults import FaultPlan
from .params import FtParams

#: collectives the recovery harness knows how to drive
HARNESS_COLLECTIVES = ("allreduce", "allgather", "bcast", "alltoall")


def _one_round(comm, collective: str, nbytes: int, rnd: int):
    n = comm.size
    words = max(nbytes // 8, 1)
    fill = float(comm.rank + rnd + 1)
    if collective == "allreduce":
        send = np.full(words, fill, dtype=np.float64)
        recv = np.empty_like(send)
        yield from comm.Allreduce(send, recv)
    elif collective == "allgather":
        send = np.full(words, fill, dtype=np.float64)
        recv = np.zeros(words * n, dtype=np.float64)
        yield from comm.Allgather(send, recv)
    elif collective == "bcast":
        buf = np.full(words, float(rnd + 1) if comm.rank == 0 else 0.0,
                      dtype=np.float64)
        yield from comm.Bcast(buf, root=0)
    elif collective == "alltoall":
        send = np.full(words * n, fill, dtype=np.float64)
        recv = np.zeros(words * n, dtype=np.float64)
        yield from comm.Alltoall(send, recv)
    else:
        raise ValueError(
            f"recovery harness drives {HARNESS_COLLECTIVES}, "
            f"not {collective!r}")


@dataclass(frozen=True)
class RecoveryPoint:
    """One (library, collective, crash plan) recovery sample."""

    library: str
    collective: str
    nbytes: int
    nodes: int
    ppn: int
    crash_ranks: Tuple[int, ...]
    crash_at: float
    completed: bool
    #: crash → first local anomaly on any survivor (seconds)
    detect_s: Optional[float] = None
    #: crash → last survivor's committed recovery (seconds)
    recover_s: Optional[float] = None
    #: mean post-recovery round / mean pre-crash round
    slowdown: Optional[float] = None
    survivors: int = 0
    recoveries: int = 0
    pre_round_s: Optional[float] = None
    post_round_s: Optional[float] = None
    error: Optional[str] = None
    notes: Tuple[str, ...] = field(default=())

    def as_dict(self) -> dict:
        return {k: (list(v) if isinstance(v, tuple) else v)
                for k, v in self.__dict__.items()}


def recovery_point(
    library: str,
    collective: str,
    nbytes: int,
    params,
    crash_ranks: Sequence[int],
    crash_at: float,
    rounds: int = 6,
    seed: int = 0,
    ft_params: Optional[FtParams] = None,
) -> RecoveryPoint:
    """Run ``rounds`` of ``collective`` with a seeded crash plan under
    ``ft=True`` and reduce the recorded recoveries to the R2 triple."""
    from ..api import Session

    plan = FaultPlan(seed=seed)
    for r in crash_ranks:
        plan = plan.crash(r, at_time=crash_at)
    session = Session(library=library, params=params, trace=False,
                      ft=(ft_params if ft_params is not None else True),
                      faults=plan, reliable=True)

    def app(comm):
        times = []
        for rnd in range(rounds):
            t0 = comm.now
            yield from _one_round(comm, collective, nbytes, rnd)
            times.append((t0, comm.now))
        return times

    base = dict(library=library, collective=collective, nbytes=nbytes,
                nodes=params.nodes, ppn=params.ppn,
                crash_ranks=tuple(crash_ranks), crash_at=crash_at)
    try:
        result = session.run(app)
    except Exception as exc:  # a hang would not even get here
        return RecoveryPoint(completed=False, error=type(exc).__name__,
                             **base)

    ft = result.world.ft
    survivors = [v for v in result.values if v is not None]
    recs = ft.recoveries
    detect_s = recover_s = slowdown = None
    pre_round = post_round = None
    notes = []
    if recs:
        anomalies = [r["t_anomaly"] for r in recs
                     if r["t_anomaly"] is not None]
        if anomalies:
            detect_s = min(anomalies) - crash_at
        else:
            # Silence backstop: nobody was blocked on the corpse — the
            # agreement's gather deadline was the detector.
            detect_s = min(r["t_decision"] for r in recs) - crash_at
            notes.append("detected by agreement backstop (no local "
                         "anomaly)")
        recover_s = max(r["t_committed"] for r in recs) - crash_at
        t_healed = max(r["t_committed"] for r in recs)
        # Classify rounds with the slowest surviving rank's clock: a
        # round is "pre" if it ended before the crash, "post" if it
        # started after every survivor committed the recovery.
        pre, post = [], []
        for times in survivors:
            for t0, t1 in times:
                if t1 <= crash_at:
                    pre.append(t1 - t0)
                elif t0 >= t_healed:
                    post.append(t1 - t0)
        if pre:
            pre_round = sum(pre) / len(pre)
        if post:
            post_round = sum(post) / len(post)
        if pre_round and post_round:
            slowdown = post_round / pre_round
        else:
            notes.append("too few clean pre/post rounds to compare")
    else:
        notes.append("no recovery recorded (crash between collectives "
                     "caught without a retry?)")
    return RecoveryPoint(completed=True, detect_s=detect_s,
                         recover_s=recover_s, slowdown=slowdown,
                         survivors=len(survivors), recoveries=len(recs),
                         pre_round_s=pre_round, post_round_s=post_round,
                         notes=tuple(notes), **base)


def recovery_report(points: Sequence[RecoveryPoint]) -> str:
    """Human-readable recovery table (CLI + saved benchmark artifact)."""
    if not points:
        return "no recovery points"

    def fmt(v, scale=1e3, unit="ms"):
        return f"{v * scale:8.3f}{unit}" if v is not None else f"{'—':>10}"

    lines = [
        "fault-tolerant recovery — crash → detect → agree → shrink → "
        "re-issue",
        f"{'library':<12} {'collective':<12} {'ranks':>6} {'crashed':>8} "
        f"{'detect':>10} {'recover':>10} {'slowdown':>9}  verdict",
    ]
    for p in points:
        ranks = p.nodes * p.ppn
        slow = f"x{p.slowdown:7.2f}" if p.slowdown is not None else f"{'—':>8}"
        verdict = "ok" if p.completed else f"FAILED ({p.error})"
        lines.append(
            f"{p.library:<12} {p.collective:<12} {ranks:>6} "
            f"{len(p.crash_ranks):>8} {fmt(p.detect_s)} {fmt(p.recover_s)} "
            f"{slow:>9}  {verdict}"
        )
    return "\n".join(lines)
