"""Inter-node transport routed through a fat-tree fabric.

Same endpoint behaviour as :class:`NetworkTransport` (eager/rendezvous,
NIC pipes, injection overheads); the transit between NICs additionally
crosses the fabric: leaf hop for intra-pod traffic, leaf → uplink →
spine → downlink → leaf for inter-pod traffic, with the uplink pipes
enforcing the pod's (possibly oversubscribed) aggregate bandwidth.
"""

from __future__ import annotations

from ..machine.fabric import Fabric
from ..machine.hardware import NodeHardware
from .base import WireDescriptor
from .network import NetworkTransport, _eager_arrive


def _fabric_at_spine(arg):
    """Fast-path hop: pod downlink → destination leaf → NIC arrival."""
    _up, down, fp, up_time, world, arrive_arg = arg
    at_leaf = down.down.reserve(up_time) + fp.leaf_latency
    world.sim.call_at(at_leaf, (_eager_arrive, arrive_arg))


def _fabric_at_leaf(arg):
    """Fast-path hop: source leaf → pod uplink → spine."""
    up, _down, fp, up_time, world, _arrive_arg = arg
    at_spine = up.up.reserve(up_time) + fp.spine_latency
    world.sim.call_at(at_spine, (_fabric_at_spine, arg))


class FabricNetworkTransport(NetworkTransport):
    """LogGP endpoints + fat-tree transit."""

    name = "fabric_network"

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric

    def schedule_delivery(self, src_node: NodeHardware, dst_node: NodeHardware,
                          desc: WireDescriptor, on_delivered):
        nic = src_node.params.nic
        fabric = self.fabric
        lead = 0.0
        if not self._is_eager(src_node, desc):
            lead = nic.rendezvous_overhead + 2.0 * nic.latency
        wire = nic.wire_time(desc.nbytes)
        src_pod = fabric.pod_of(src_node.node_id)
        dst_pod = fabric.pod_of(dst_node.node_id)
        src_node.tx_messages += 1

        if src_pod == dst_pod:
            # NIC → leaf → NIC.
            on_wire = src_node.tx.occupy(
                wire, lead_delay=lead, tail_delay=fabric.fp.leaf_latency)

            def _arrived(_ev):
                dst_node.rx_messages += 1
                done = dst_node.rx.occupy(wire)
                done.callbacks.append(lambda _e: on_delivered())

            on_wire.callbacks.append(_arrived)
            return on_wire

        # NIC → leaf → uplink → spine → downlink → leaf → NIC.
        up = fabric.uplinks[src_pod]
        down = fabric.uplinks[dst_pod]
        up.bytes_up += desc.nbytes
        down.bytes_down += desc.nbytes
        up_time = fabric.uplink_time(desc.nbytes)
        on_wire = src_node.tx.occupy(
            wire, lead_delay=lead, tail_delay=fabric.fp.leaf_latency)

        def _at_leaf(_ev):
            crossed_up = up.up.occupy(up_time, tail_delay=fabric.fp.spine_latency)

            def _at_spine(_ev2):
                crossed_down = down.down.occupy(
                    up_time, tail_delay=fabric.fp.leaf_latency)

                def _at_dst_leaf(_ev3):
                    dst_node.rx_messages += 1
                    done = dst_node.rx.occupy(wire)
                    done.callbacks.append(lambda _e: on_delivered())

                crossed_down.callbacks.append(_at_dst_leaf)

            crossed_up.callbacks.append(_at_spine)

        on_wire.callbacks.append(_at_leaf)
        return on_wire

    def schedule_delivery_fast(self, src_node, dst_node, desc, world) -> bool:
        """Batched eager completion across the fat tree.

        Pod-local traffic costs two bare queue items (NIC arrival +
        RX drain), inter-pod traffic two more for the uplink/downlink
        hops — each hop's pipe reservation still happens at the exact
        instant the reference closure chain would make it, so fabric
        contention is priced identically.
        """
        wire_desc = desc.wire
        nic = src_node.params.nic
        if wire_desc.nbytes > nic.eager_limit:
            return False
        fabric = self.fabric
        fp = fabric.fp
        src_pod = fabric.pod_of(src_node.node_id)
        dst_pod = fabric.pod_of(dst_node.node_id)
        src_node.tx_messages += 1
        wire = nic.wire_time(wire_desc.nbytes)
        at_leaf = src_node.tx.reserve(wire) + fp.leaf_latency
        arrive_arg = (dst_node, wire, desc, world)
        if src_pod == dst_pod:
            world.sim.call_at(at_leaf, (_eager_arrive, arrive_arg))
            return True
        up = fabric.uplinks[src_pod]
        down = fabric.uplinks[dst_pod]
        up.bytes_up += wire_desc.nbytes
        down.bytes_down += wire_desc.nbytes
        up_time = fabric.uplink_time(wire_desc.nbytes)
        world.sim.call_at(
            at_leaf,
            (_fabric_at_leaf, (up, down, fp, up_time, world, arrive_arg)),
        )
        return True

    def delivery_steps(self, src_node: NodeHardware, dst_node: NodeHardware,
                       desc: WireDescriptor):
        """Generator fallback (kept equivalent for the reference path)."""
        sim = src_node.sim
        nic = src_node.params.nic
        fabric = self.fabric
        if not self._is_eager(src_node, desc):
            yield sim.timeout(nic.rendezvous_overhead + 2.0 * nic.latency)
        yield src_node.inject(desc.nbytes)
        src_pod = fabric.pod_of(src_node.node_id)
        dst_pod = fabric.pod_of(dst_node.node_id)
        if src_pod == dst_pod:
            yield sim.timeout(fabric.fp.leaf_latency)
        else:
            up = fabric.uplinks[src_pod]
            down = fabric.uplinks[dst_pod]
            up.bytes_up += desc.nbytes
            down.bytes_down += desc.nbytes
            up_time = fabric.uplink_time(desc.nbytes)
            yield sim.timeout(fabric.fp.leaf_latency)
            yield up.up.occupy(up_time)
            yield sim.timeout(fabric.fp.spine_latency)
            yield down.down.occupy(up_time)
            yield sim.timeout(fabric.fp.leaf_latency)
        yield dst_node.extract(desc.nbytes)

    def describe(self) -> str:
        fp = self.fabric.fp
        return (f"fabric_network: fat-tree pods of {fp.pod_size}, "
                f"{fp.oversubscription:g}:1 oversubscription")
