"""Inter-node transport routed through a fat-tree fabric.

Same endpoint behaviour as :class:`NetworkTransport` (eager/rendezvous,
NIC pipes, injection overheads); the transit between NICs additionally
crosses the fabric: leaf hop for intra-pod traffic, leaf → uplink →
spine → downlink → leaf for inter-pod traffic, with the uplink pipes
enforcing the pod's (possibly oversubscribed) aggregate bandwidth.
"""

from __future__ import annotations

from ..machine.fabric import Fabric
from ..machine.hardware import NodeHardware
from .base import WireDescriptor
from .network import NetworkTransport


class FabricNetworkTransport(NetworkTransport):
    """LogGP endpoints + fat-tree transit."""

    name = "fabric_network"

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric

    def schedule_delivery(self, src_node: NodeHardware, dst_node: NodeHardware,
                          desc: WireDescriptor, on_delivered):
        nic = src_node.params.nic
        fabric = self.fabric
        lead = 0.0
        if not self._is_eager(src_node, desc):
            lead = nic.rendezvous_overhead + 2.0 * nic.latency
        wire = nic.wire_time(desc.nbytes)
        src_pod = fabric.pod_of(src_node.node_id)
        dst_pod = fabric.pod_of(dst_node.node_id)
        src_node.tx_messages += 1

        if src_pod == dst_pod:
            # NIC → leaf → NIC.
            on_wire = src_node.tx.occupy(
                wire, lead_delay=lead, tail_delay=fabric.fp.leaf_latency)

            def _arrived(_ev):
                dst_node.rx_messages += 1
                done = dst_node.rx.occupy(wire)
                done.callbacks.append(lambda _e: on_delivered())

            on_wire.callbacks.append(_arrived)
            return on_wire

        # NIC → leaf → uplink → spine → downlink → leaf → NIC.
        up = fabric.uplinks[src_pod]
        down = fabric.uplinks[dst_pod]
        up.bytes_up += desc.nbytes
        down.bytes_down += desc.nbytes
        up_time = fabric.uplink_time(desc.nbytes)
        on_wire = src_node.tx.occupy(
            wire, lead_delay=lead, tail_delay=fabric.fp.leaf_latency)

        def _at_leaf(_ev):
            crossed_up = up.up.occupy(up_time, tail_delay=fabric.fp.spine_latency)

            def _at_spine(_ev2):
                crossed_down = down.down.occupy(
                    up_time, tail_delay=fabric.fp.leaf_latency)

                def _at_dst_leaf(_ev3):
                    dst_node.rx_messages += 1
                    done = dst_node.rx.occupy(wire)
                    done.callbacks.append(lambda _e: on_delivered())

                crossed_down.callbacks.append(_at_dst_leaf)

            crossed_up.callbacks.append(_at_spine)

        on_wire.callbacks.append(_at_leaf)
        return on_wire

    def delivery_steps(self, src_node: NodeHardware, dst_node: NodeHardware,
                       desc: WireDescriptor):
        """Generator fallback (kept equivalent for the reference path)."""
        sim = src_node.sim
        nic = src_node.params.nic
        fabric = self.fabric
        if not self._is_eager(src_node, desc):
            yield sim.timeout(nic.rendezvous_overhead + 2.0 * nic.latency)
        yield src_node.inject(desc.nbytes)
        src_pod = fabric.pod_of(src_node.node_id)
        dst_pod = fabric.pod_of(dst_node.node_id)
        if src_pod == dst_pod:
            yield sim.timeout(fabric.fp.leaf_latency)
        else:
            up = fabric.uplinks[src_pod]
            down = fabric.uplinks[dst_pod]
            up.bytes_up += desc.nbytes
            down.bytes_down += desc.nbytes
            up_time = fabric.uplink_time(desc.nbytes)
            yield sim.timeout(fabric.fp.leaf_latency)
            yield up.up.occupy(up_time)
            yield sim.timeout(fabric.fp.spine_latency)
            yield down.down.occupy(up_time)
            yield sim.timeout(fabric.fp.leaf_latency)
        yield dst_node.extract(desc.nbytes)

    def describe(self) -> str:
        fp = self.fabric.fp
        return (f"fabric_network: fat-tree pods of {fp.pod_size}, "
                f"{fp.oversubscription:g}:1 oversubscription")
