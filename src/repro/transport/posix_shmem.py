"""POSIX shared-memory transport (double copy).

The classic ``shm_open``/``mmap`` design (MPICH Nemesis, Intel MPI shm,
Parsons & Pai's multisender substrate): sender copies the payload into
a shared-segment cell, receiver copies it out.  Two full traversals of
the payload through the memory system — the "inherent double copy
overhead" the paper's §1 pins on POSIX-SHMEM — plus per-cell protocol
bookkeeping when a message spans multiple cells.
"""

from __future__ import annotations

from ..machine.hardware import NodeHardware
from .base import Transport, WireDescriptor


class PosixShmemTransport(Transport):
    """Copy-in / copy-out through a shared segment."""

    name = "posix_shmem"
    supports_peer_views = False
    fast_pt2pt = True

    def delivery_flat_delay(self, src_node):
        return src_node.params.memory.flag_latency

    #: shared-queue cell size (MPICH nemesis fastbox/cell scale)
    CELL_SIZE = 8192
    #: bookkeeping per cell: enqueue, sequence stamp, cacheline flush
    CELL_OVERHEAD = 8.0e-8

    def _cells(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self.CELL_SIZE))

    def sender_steps(self, node: NodeHardware, desc: WireDescriptor):
        """Copy-in: payload into the shared cell(s)."""
        yield node.sim.timeout(self._cells(desc.nbytes) * self.CELL_OVERHEAD)
        yield from node.mem_copy(desc.nbytes)

    def delivery_steps(self, src_node: NodeHardware, dst_node: NodeHardware,
                       desc: WireDescriptor):
        """Cell-full flag becomes visible one flag hop later."""
        yield src_node.sim.timeout(src_node.params.memory.flag_latency)

    def receiver_steps(self, node: NodeHardware, desc: WireDescriptor):
        """Copy-out: shared cell(s) into the user receive buffer."""
        yield node.sim.timeout(self._cells(desc.nbytes) * self.CELL_OVERHEAD)
        yield from node.mem_copy(desc.nbytes)

    def sender_flat_time(self, node, desc):
        return (self._cells(desc.nbytes) * self.CELL_OVERHEAD
                + node.copy_cost(desc.nbytes))

    def receiver_flat_time(self, node, desc):
        return (self._cells(desc.nbytes) * self.CELL_OVERHEAD
                + node.copy_cost(desc.nbytes))

    def schedule_delivery(self, src_node, dst_node, desc, on_delivered):
        ev = src_node.sim.timeout(src_node.params.memory.flag_latency)
        ev.callbacks.append(lambda _e: on_delivered())
        return ev

    def describe(self) -> str:
        return "posix_shmem: 2 copies, 0 syscalls/msg, cell protocol"
