"""Transport interface: how bytes move and what it costs.

Every transport — the four intra-node mechanisms the paper contrasts
(POSIX-SHMEM, CMA, XPMEM, PiP) and the inter-node network — implements
the same three-phase choreography used by the pt2pt engine:

``sender_steps``
    run *inline by the sending rank's coroutine* (it blocks the sender:
    this is where single-leader designs lose — one core pays every
    message's overhead serially);
``delivery_steps``
    run by a detached delivery process; models the time between the
    sender finishing its part and the message becoming matchable at the
    destination (flag visibility intra-node; NIC pipes + wire latency
    inter-node);
``receiver_steps``
    run inline by the receiving rank's coroutine once the message is
    matched (copy-out, syscalls, attach costs...).

All three are generators over simulation events, so transports can use
node hardware resources (memory bus, NIC pipes) and not just constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from ..machine.hardware import NodeHardware


@dataclass(slots=True)
class WireDescriptor:
    """What the pt2pt engine hands to a transport for one message."""

    src: int  # world rank of sender
    dst: int  # world rank of receiver
    nbytes: int
    #: identity of the *send* buffer; transports with attach caches
    #: (XPMEM) key their caches on it.
    buf_key: Hashable = None
    #: free-form per-transport scratch (e.g. rendezvous state)
    meta: dict = field(default_factory=dict)


class Transport:
    """Base transport. Subclasses override the three phases.

    The defaults are all free/no-op so trivial transports (e.g. a
    self-send shortcut) stay trivial.
    """

    #: Human-readable name used in reports and library descriptions.
    name: str = "null"
    #: True only for PiP: collectives may take direct peer views.
    supports_peer_views: bool = False
    #: True for transports that cross the fabric — the only place
    #: wire-layer faults (drop/corrupt/...) can physically occur.
    inter_node: bool = False
    #: bound :class:`~repro.obs.SpanRecorder` (set by
    #: ``World.attach_obs``), or None — transports with interesting
    #: internal phases (retransmits) annotate them through this.
    obs = None
    #: True when this transport supports the macro-event pt2pt fast
    #: path: its flat times are always available and its delivery can
    #: be scheduled without Events (``delivery_flat_delay`` for a
    #: constant-delay delivery, or ``schedule_delivery_fast`` for
    #: pipe-based transit).  Timing must be identical to the reference
    #: choreography — the differential suite asserts it.
    fast_pt2pt: bool = False

    def sender_steps(self, node: NodeHardware, desc: WireDescriptor):
        """Sender-side CPU work (generator)."""
        return
        yield  # pragma: no cover - makes this a generator

    def delivery_steps(self, src_node: NodeHardware, dst_node: NodeHardware,
                       desc: WireDescriptor):
        """Transit time until the message is matchable (generator)."""
        return
        yield  # pragma: no cover - makes this a generator

    def receiver_steps(self, node: NodeHardware, desc: WireDescriptor):
        """Receiver-side CPU work after matching (generator)."""
        return
        yield  # pragma: no cover - makes this a generator

    # -- flat fast paths (optional) ----------------------------------
    # The generator phases above are the reference choreography; the
    # methods below let the pt2pt engine collapse a phase into a single
    # scheduled event when no shared resource is contended.  Returning
    # None means "no fast path — run the generator".  Timing must be
    # identical either way (asserted by the transport test suite).

    def sender_flat_time(self, node: NodeHardware,
                         desc: WireDescriptor) -> "float | None":
        """Closed-form sender-side time, or None."""
        return None

    def receiver_flat_time(self, node: NodeHardware,
                           desc: WireDescriptor) -> "float | None":
        """Closed-form receiver-side time, or None.

        Called exactly once per completed receive, so stateful
        transports (XPMEM's attach cache) may mutate state here.
        """
        return None

    def schedule_delivery(self, src_node: NodeHardware, dst_node: NodeHardware,
                          desc: WireDescriptor, on_delivered) -> "Any | None":
        """Schedule delivery without a process, or return None.

        Implementations arrange for ``on_delivered()`` to run at the
        moment the message becomes matchable and return an event that
        fires then (used as the rendezvous completion).
        """
        return None

    # -- macro-event fast path (optional) ----------------------------
    def delivery_flat_delay(self, src_node: NodeHardware) -> "float | None":
        """Constant delivery delay (flag visibility), or None.

        Intra-node transports deliver after one flag-latency hop with
        no contended resource in between; returning that constant lets
        the pt2pt fast path schedule delivery as a single bare queue
        item instead of a Timeout + callback chain.
        """
        return None

    def schedule_delivery_fast(self, src_node: NodeHardware,
                               dst_node: NodeHardware, desc,
                               world) -> bool:
        """Schedule delivery of ``desc`` using bare queue items.

        Returns True when handled; False falls the message back to the
        reference choreography (e.g. rendezvous-size messages).  Only
        called when :attr:`fast_pt2pt` is True and no faults/tracing
        are attached; the scheduled items must reproduce the reference
        path's timestamps and same-instant ordering exactly.
        """
        return False

    def describe(self) -> str:
        """One-line cost-structure summary for reports."""
        return self.name

