"""PiP transport (single copy, no syscalls, no faults, no attach).

With Process-in-Process every task on the node already shares one
virtual address space, so an intra-node transfer is: publish a flag,
peer copies the payload with an ordinary ``memcpy``.  One payload
traversal, zero kernel involvement — the cost floor the paper builds
PiP-MColl on.

``size_sync=True`` reproduces the **naive PiP-MPICH baseline** (paper
§3): before any transfer the sender and receiver synchronise the
message size through shared flags, stalling the sender for a full
round trip per message.  This is the overhead that makes PiP-MPICH
sometimes the slowest library at small sizes, and what PiP-MColl's
redesigned collectives avoid.
"""

from __future__ import annotations

from ..machine.hardware import NodeHardware
from ..pip.sync import SizeSync
from .base import Transport, WireDescriptor


class PipTransport(Transport):
    """Direct load/store through the shared address space."""

    supports_peer_views = True
    fast_pt2pt = True

    def delivery_flat_delay(self, src_node):
        return src_node.params.memory.flag_latency

    def __init__(self, size_sync: bool = False) -> None:
        self.size_sync = size_sync
        self.name = "pip+sizesync" if size_sync else "pip"

    def sender_steps(self, node: NodeHardware, desc: WireDescriptor):
        """Publish the descriptor; the naive port also syncs sizes."""
        if self.size_sync:
            yield node.sim.timeout(SizeSync(node.params.memory).cost())
        else:
            # Writing the descriptor word is a store; charge one flag
            # store cost (visibility is in delivery_steps).
            yield node.sim.timeout(0.0)

    def delivery_steps(self, src_node: NodeHardware, dst_node: NodeHardware,
                       desc: WireDescriptor):
        """Flag visibility: one store→load hop."""
        yield src_node.sim.timeout(src_node.params.memory.flag_latency)

    def receiver_steps(self, node: NodeHardware, desc: WireDescriptor):
        """One plain user-space copy, straight out of the peer buffer."""
        yield from node.mem_copy(desc.nbytes)

    def sender_flat_time(self, node, desc):
        if self.size_sync:
            return SizeSync(node.params.memory).cost()
        return 0.0

    def receiver_flat_time(self, node, desc):
        return node.copy_cost(desc.nbytes)

    def schedule_delivery(self, src_node, dst_node, desc, on_delivered):
        ev = src_node.sim.timeout(src_node.params.memory.flag_latency)
        ev.callbacks.append(lambda _e: on_delivered())
        return ev

    def describe(self) -> str:
        extra = " + per-msg size sync (naive PiP-MPICH)" if self.size_sync else ""
        return f"{self.name}: 1 copy, 0 syscalls, 0 faults{extra}"
