"""Inter-node network transport (LogGP over the NIC pipes).

Eager protocol (``nbytes <= eager_limit``): the sender copies the
payload into a pre-registered bounce buffer (one copy), pays its
injection overhead ``o``, and the message transits TX pipe → wire → RX
pipe; the receiver pays ``o_r`` plus the copy out of the landing zone.

Rendezvous protocol (large messages): an RTS/CTS handshake (priced as
``rendezvous_overhead`` plus one extra wire round trip) precedes a
zero-copy RDMA of the payload.

The NIC pipes are :class:`~repro.sim.resources.RateLimiter` instances
shared by every rank on the node, so *aggregate* injection is bounded
by the adapter's message rate — while each rank's *own* injection rate
is bounded by its core paying ``o`` per message.  The gap between
those two bounds is exactly the headroom the paper's multi-object
design exploits.
"""

from __future__ import annotations

from ..machine.hardware import NodeHardware
from .base import Transport, WireDescriptor


def _eager_arrive(arg):
    """Fast-path arrival: reserve the RX pipe, schedule the completion.

    Runs as a bare ``(fn, arg)`` queue item at the instant the message
    reaches the destination NIC — the same instant the reference path's
    ``on_wire`` event fires — so the RX reservation order (and with it
    every downstream timestamp) is identical to the slow path.
    """
    dst_node, wire, desc, world = arg
    dst_node.rx_messages += 1
    finish = dst_node.rx.reserve(wire)
    world.sim.call_at(finish, (world.deliver, desc))


class NetworkTransport(Transport):
    """LogGP-style inter-node messaging."""

    name = "network"
    supports_peer_views = False
    inter_node = True
    fast_pt2pt = True

    def _is_eager(self, node: NodeHardware, desc: WireDescriptor) -> bool:
        return desc.nbytes <= node.params.nic.eager_limit

    def sender_steps(self, node: NodeHardware, desc: WireDescriptor):
        """Post the send: injection overhead + eager bounce copy."""
        nic = node.params.nic
        yield node.sim.timeout(nic.inject_overhead)
        if self._is_eager(node, desc):
            yield from node.mem_copy(desc.nbytes)

    def delivery_steps(self, src_node: NodeHardware, dst_node: NodeHardware,
                       desc: WireDescriptor):
        """TX pipe → wire latency → RX pipe (plus rendezvous handshake)."""
        sim = src_node.sim
        nic = src_node.params.nic
        if not self._is_eager(src_node, desc):
            # RTS → CTS round trip before the payload moves.
            yield sim.timeout(nic.rendezvous_overhead + 2.0 * nic.latency)
        yield src_node.inject(desc.nbytes)
        yield sim.timeout(nic.latency)
        yield dst_node.extract(desc.nbytes)

    def receiver_steps(self, node: NodeHardware, desc: WireDescriptor):
        """Drain the completion + eager copy-out of the landing zone."""
        nic = node.params.nic
        yield node.sim.timeout(nic.recv_overhead)
        if self._is_eager(node, desc):
            yield from node.mem_copy(desc.nbytes)

    def sender_flat_time(self, node, desc):
        nic = node.params.nic
        if not self._is_eager(node, desc):
            return nic.inject_overhead
        return nic.inject_overhead + node.copy_cost(desc.nbytes)

    def receiver_flat_time(self, node, desc):
        nic = node.params.nic
        if not self._is_eager(node, desc):
            return nic.recv_overhead
        return nic.recv_overhead + node.copy_cost(desc.nbytes)

    def schedule_delivery(self, src_node, dst_node, desc, on_delivered):
        nic = src_node.params.nic
        lead = 0.0
        if not self._is_eager(src_node, desc):
            lead = nic.rendezvous_overhead + 2.0 * nic.latency
        wire = nic.wire_time(desc.nbytes)
        src_node.tx_messages += 1
        on_wire = src_node.tx.occupy(wire, lead_delay=lead, tail_delay=nic.latency)

        def _arrived(_ev, dst_node=dst_node, wire=wire):
            dst_node.rx_messages += 1
            done = dst_node.rx.occupy(wire)
            done.callbacks.append(lambda _e: on_delivered())
            # Re-point the completion chain: the returned event is
            # `on_wire`; rendezvous completion only needs "payload left
            # the send buffer", which for RDMA is when it is on the
            # wire, so `on_wire` is the right completion event.

        on_wire.callbacks.append(_arrived)
        return on_wire

    def schedule_delivery_sharded(self, src_node, dst_node, desc, world):
        """Delivery choreography for the sharded engine.

        Identical reservations and timestamps to
        :meth:`schedule_delivery`, restructured so the destination-side
        work is a picklable ``(fn, arg)`` item routed into the
        destination node's *shard* via ``call_at_node`` (the reference
        path runs the RX reservation as a callback of the sender-side
        ``on_wire`` event, which would mutate destination state from
        the source shard's queue).  Covers eager and rendezvous; the
        returned event fires when the payload is on the wire — the
        rendezvous completion, exactly as in the reference path.

        Only called by ``isend`` when the world's tracer and span
        recorder are absent (the sharded engine guarantees that), so
        delivery is a plain ``world.deliver`` — no closures cross the
        shard boundary.
        """
        nic = src_node.params.nic
        lead = 0.0
        if not self._is_eager(src_node, desc.wire):
            lead = nic.rendezvous_overhead + 2.0 * nic.latency
        wire = nic.wire_time(desc.nbytes)
        src_node.tx_messages += 1
        finish = src_node.tx.reserve(wire, lead_delay=lead)
        sim = world.sim
        arrival = finish + nic.latency
        on_wire = sim.event_at(arrival)
        sim.call_at_node(dst_node.node_id, arrival,
                         (_eager_arrive, (dst_node, wire, desc, world)))
        return on_wire

    def schedule_delivery_fast(self, src_node, dst_node, desc, world) -> bool:
        """Batched eager completion: two bare queue items per message.

        The whole TX-pipe → wire → RX-pipe → matchable pipeline of one
        eager message costs one ``_eager_arrive`` item (at NIC arrival)
        plus one ``world.deliver`` item (at RX drain) — no Events, no
        callback lists, no closures.  Rendezvous messages keep the
        reference choreography (their completion event is the send
        request's completion).
        """
        wire_desc = desc.wire
        nic = src_node.params.nic
        if wire_desc.nbytes > nic.eager_limit:
            return False
        src_node.tx_messages += 1
        wire = nic.wire_time(wire_desc.nbytes)
        arrival = src_node.tx.reserve(wire) + nic.latency
        world.sim.call_at_node(dst_node.node_id, arrival,
                               (_eager_arrive, (dst_node, wire, desc, world)))
        return True

    def describe(self) -> str:
        return "network: LogGP eager/rendezvous over shared NIC pipes"


class ReliableNetworkTransport(NetworkTransport):
    """Eager delivery with per-message ack / timeout / retransmit.

    The plain transport assumes a perfect wire; this one runs a stop-
    and-wait reliability protocol per eager message, which is what
    makes chaos sweeps meaningful: a dropped or corrupted transmission
    costs a retransmission timeout (exponential backoff over an RTT
    estimate) and another trip through the NIC pipes, all accrued in
    simulated time.  After ``max_retries`` retransmissions the flow
    gives up and raises
    :class:`~repro.runtime.errors.DeliveryFailedError` naming the
    src/dst ranks — a diagnosis instead of a silent deadlock.

    Protocol costs on the success path: the receiver returns an ack
    (one ``msg_gap`` through its TX pipe plus wire latency); the sender
    frees its bounce buffer on ack receipt, but eager completion does
    not block on it — matching MPI eager semantics.

    Retransmission could reorder messages of one (src, dst) flow, so
    deliveries are chained per flow: a retransmitted message must be
    delivered before any later message of the same flow becomes
    matchable (go-back-N-style in-order delivery), preserving MPI's
    non-overtaking guarantee that the collectives rely on.

    Rendezvous messages keep the base-class path: RDMA is modeled as
    hardware-reliable (link-level retry), as on real fabrics.

    Faults come from the bound
    :class:`~repro.faults.FaultInjector` (``injector``), which also
    supplies per-node NIC degradation factors; without an injector the
    protocol still runs (acks and all) over a perfect wire.
    """

    name = "reliable_network"
    #: the ack/retransmit protocol needs its full process choreography
    fast_pt2pt = False

    def __init__(self, injector=None, max_retries: int = 8,
                 backoff: float = 2.0) -> None:
        #: the world's FaultInjector (None = perfect wire)
        self.injector = injector
        #: retransmissions allowed before DeliveryFailedError
        self.max_retries = max_retries
        #: RTO multiplier per consecutive loss
        self.backoff = backoff
        #: protocol counters (stats/report probes)
        self.retransmits = 0
        self.acks = 0
        #: per-(src, dst) tail of the in-order delivery chain
        self._flow_tail = {}
        #: give-up hook: called with the structured DeliveryFailedError
        #: instead of raising it.  The fault-tolerance layer sets this
        #: so an exhausted flow becomes a recovery trigger (the message
        #: is abandoned, the flow chain is released) rather than a
        #: simulator abort no rank can catch.
        self.on_give_up = None

    def rto(self, nic, wire_t: float, attempt: int) -> float:
        """Retransmission timeout for the ``attempt``-th transmission."""
        rtt = 2.0 * nic.latency + wire_t + nic.msg_gap
        return (rtt + 1e-6) * (self.backoff ** (attempt - 1))

    def schedule_delivery(self, src_node, dst_node, desc, on_delivered):
        if not self._is_eager(src_node, desc):
            return super().schedule_delivery(src_node, dst_node, desc,
                                             on_delivered)
        desc.meta["reliable"] = True
        sim = src_node.sim
        flow = (desc.src, desc.dst)
        prev = self._flow_tail.get(flow)
        arrival = sim.event()
        self._flow_tail[flow] = arrival
        return sim.process(
            self._send_eager(src_node, dst_node, desc, on_delivered,
                             prev, arrival),
            name=f"rsend:{desc.src}->{desc.dst}",
        )

    def _send_eager(self, src_node, dst_node, desc, on_delivered,
                    prev, arrival):
        sim = src_node.sim
        nic = src_node.params.nic
        injector = self.injector
        src_f = injector.rate_factor(src_node.node_id) if injector else 1.0
        dst_f = injector.rate_factor(dst_node.node_id) if injector else 1.0
        wire_t = nic.wire_time(desc.nbytes)
        t_first = sim.now
        attempt = 0
        while True:
            attempt += 1
            fault = injector.wire_fault(desc, attempt) if injector else None
            extra = fault.extra_delay if fault is not None else 0.0
            src_node.tx_messages += 1
            yield src_node.tx.occupy(wire_t * src_f, lead_delay=extra,
                                     tail_delay=nic.latency)
            if fault is None or not fault.lost:
                dst_node.rx_messages += 1
                if fault is not None and fault.duplicate:
                    # The duplicate copy transits the RX pipe too, but
                    # the sequence number dedups it before matching.
                    dst_node.rx.occupy(wire_t * dst_f)
                yield dst_node.rx.occupy(wire_t * dst_f)
                if prev is not None and not prev.processed:
                    yield prev  # in-order delivery within the flow
                on_delivered()
                arrival.succeed()
                self.acks += 1
                yield dst_node.tx.occupy(nic.msg_gap, tail_delay=nic.latency)
                return
            if fault.corrupt and not fault.drop:
                # Junk bytes still transit the RX pipe; the checksum
                # discards them there, so no ack comes back.
                dst_node.rx_messages += 1
                dst_node.rx.occupy(wire_t * dst_f)
            if attempt > self.max_retries:
                from ..runtime.errors import DeliveryFailedError

                collective = rnd = None
                if self.obs is not None:
                    collective, rnd = self.obs.current_context(desc.src)
                err = DeliveryFailedError(
                    f"delivery failed: rank {desc.src} -> rank {desc.dst} "
                    f"({desc.nbytes} B, tag={desc.meta.get('tag')}) gave up "
                    f"after {attempt} transmissions "
                    f"({self.max_retries} retries)",
                    src=desc.src, dst=desc.dst, nbytes=desc.nbytes,
                    tag=desc.meta.get("tag"), attempts=attempt,
                    elapsed_s=sim.now - t_first,
                    collective=collective, round=rnd,
                )
                if self.on_give_up is not None:
                    # Recovery mode: report the dead flow and release
                    # the in-order chain so later messages of this
                    # flow stay deliverable.
                    self.on_give_up(err)
                    arrival.succeed()
                    return
                raise err
            self.retransmits += 1
            if injector is not None:
                injector.note("retransmit", desc.src, desc.dst, desc.nbytes,
                              attempt=attempt)
            if self.obs is not None:
                # Span covering the RTO backoff window before the next
                # transmission — what a chaos timeline is made of.
                rto_sid = self.obs.open(
                    desc.src, f"retransmit→{desc.dst}", cat="retransmit",
                    on_stack=False, src=desc.src, dst=desc.dst,
                    nbytes=desc.nbytes, attempt=attempt,
                )
                yield sim.timeout(self.rto(nic, wire_t, attempt))
                self.obs.close(rto_sid)
            else:
                yield sim.timeout(self.rto(nic, wire_t, attempt))

    def describe(self) -> str:
        return ("reliable network: LogGP eager with ack/timeout/retransmit "
                f"(<= {self.max_retries} retries, x{self.backoff:g} backoff)")
