"""Inter-node network transport (LogGP over the NIC pipes).

Eager protocol (``nbytes <= eager_limit``): the sender copies the
payload into a pre-registered bounce buffer (one copy), pays its
injection overhead ``o``, and the message transits TX pipe → wire → RX
pipe; the receiver pays ``o_r`` plus the copy out of the landing zone.

Rendezvous protocol (large messages): an RTS/CTS handshake (priced as
``rendezvous_overhead`` plus one extra wire round trip) precedes a
zero-copy RDMA of the payload.

The NIC pipes are :class:`~repro.sim.resources.RateLimiter` instances
shared by every rank on the node, so *aggregate* injection is bounded
by the adapter's message rate — while each rank's *own* injection rate
is bounded by its core paying ``o`` per message.  The gap between
those two bounds is exactly the headroom the paper's multi-object
design exploits.
"""

from __future__ import annotations

from ..machine.hardware import NodeHardware
from .base import Transport, WireDescriptor


class NetworkTransport(Transport):
    """LogGP-style inter-node messaging."""

    name = "network"
    supports_peer_views = False

    def _is_eager(self, node: NodeHardware, desc: WireDescriptor) -> bool:
        return desc.nbytes <= node.params.nic.eager_limit

    def sender_steps(self, node: NodeHardware, desc: WireDescriptor):
        """Post the send: injection overhead + eager bounce copy."""
        nic = node.params.nic
        yield node.sim.timeout(nic.inject_overhead)
        if self._is_eager(node, desc):
            yield from node.mem_copy(desc.nbytes)

    def delivery_steps(self, src_node: NodeHardware, dst_node: NodeHardware,
                       desc: WireDescriptor):
        """TX pipe → wire latency → RX pipe (plus rendezvous handshake)."""
        sim = src_node.sim
        nic = src_node.params.nic
        if not self._is_eager(src_node, desc):
            # RTS → CTS round trip before the payload moves.
            yield sim.timeout(nic.rendezvous_overhead + 2.0 * nic.latency)
        yield src_node.inject(desc.nbytes)
        yield sim.timeout(nic.latency)
        yield dst_node.extract(desc.nbytes)

    def receiver_steps(self, node: NodeHardware, desc: WireDescriptor):
        """Drain the completion + eager copy-out of the landing zone."""
        nic = node.params.nic
        yield node.sim.timeout(nic.recv_overhead)
        if self._is_eager(node, desc):
            yield from node.mem_copy(desc.nbytes)

    def sender_flat_time(self, node, desc):
        nic = node.params.nic
        if not self._is_eager(node, desc):
            return nic.inject_overhead
        return nic.inject_overhead + node.copy_cost(desc.nbytes)

    def receiver_flat_time(self, node, desc):
        nic = node.params.nic
        if not self._is_eager(node, desc):
            return nic.recv_overhead
        return nic.recv_overhead + node.copy_cost(desc.nbytes)

    def schedule_delivery(self, src_node, dst_node, desc, on_delivered):
        nic = src_node.params.nic
        lead = 0.0
        if not self._is_eager(src_node, desc):
            lead = nic.rendezvous_overhead + 2.0 * nic.latency
        wire = nic.wire_time(desc.nbytes)
        src_node.tx_messages += 1
        on_wire = src_node.tx.occupy(wire, lead_delay=lead, tail_delay=nic.latency)

        def _arrived(_ev, dst_node=dst_node, wire=wire):
            dst_node.rx_messages += 1
            done = dst_node.rx.occupy(wire)
            done.callbacks.append(lambda _e: on_delivered())
            # Re-point the completion chain: the returned event is
            # `on_wire`; rendezvous completion only needs "payload left
            # the send buffer", which for RDMA is when it is on the
            # wire, so `on_wire` is the right completion event.

        on_wire.callbacks.append(_arrived)
        return on_wire

    def describe(self) -> str:
        return "network: LogGP eager/rendezvous over shared NIC pipes"
