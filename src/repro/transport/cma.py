"""Cross Memory Attach transport (single copy via syscall).

CMA (``process_vm_readv``) lets the kernel copy straight from the
sender's buffer to the receiver's — one payload traversal — but every
transfer pays a kernel crossing, which dominates at small message
sizes (the paper's §1 critique of kernel-assisted approaches).
"""

from __future__ import annotations

from ..machine.hardware import NodeHardware
from .base import Transport, WireDescriptor


class CmaTransport(Transport):
    """Kernel-mediated single copy."""

    name = "cma"
    supports_peer_views = False
    fast_pt2pt = True

    def delivery_flat_delay(self, src_node):
        return src_node.params.memory.flag_latency

    #: the kernel performs one copy per iovec span of this size
    MAX_IOV_SPAN = 2 << 20
    #: sender cost to publish the (address, length) header
    HEADER_COST = 1.0e-7

    def sender_steps(self, node: NodeHardware, desc: WireDescriptor):
        """Publish the source address/length header (no payload copy)."""
        yield node.sim.timeout(self.HEADER_COST)

    def delivery_steps(self, src_node: NodeHardware, dst_node: NodeHardware,
                       desc: WireDescriptor):
        """Header visibility: one flag hop."""
        yield src_node.sim.timeout(src_node.params.memory.flag_latency)

    def receiver_steps(self, node: NodeHardware, desc: WireDescriptor):
        """``process_vm_readv``: syscall(s) + the single kernel copy."""
        mem = node.params.memory
        syscalls = max(1, -(-desc.nbytes // self.MAX_IOV_SPAN))
        yield node.sim.timeout(syscalls * mem.syscall_overhead)
        yield from node.mem_copy(desc.nbytes)

    def sender_flat_time(self, node, desc):
        return self.HEADER_COST

    def receiver_flat_time(self, node, desc):
        syscalls = max(1, -(-desc.nbytes // self.MAX_IOV_SPAN))
        return (syscalls * node.params.memory.syscall_overhead
                + node.copy_cost(desc.nbytes))

    def schedule_delivery(self, src_node, dst_node, desc, on_delivered):
        ev = src_node.sim.timeout(src_node.params.memory.flag_latency)
        ev.callbacks.append(lambda _e: on_delivered())
        return ev

    def describe(self) -> str:
        return "cma: 1 copy, 1 syscall/msg (process_vm_readv)"
