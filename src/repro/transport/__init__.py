"""Data-movement transports (subsystem S4)."""

from .base import Transport, WireDescriptor
from .cma import CmaTransport
from .fabric_network import FabricNetworkTransport
from .network import NetworkTransport, ReliableNetworkTransport
from .pip_transport import PipTransport
from .posix_shmem import PosixShmemTransport
from .registry import available_transports, make_transport
from .xpmem import XpmemTransport

__all__ = [
    "CmaTransport",
    "FabricNetworkTransport",
    "NetworkTransport",
    "PipTransport",
    "PosixShmemTransport",
    "ReliableNetworkTransport",
    "Transport",
    "WireDescriptor",
    "XpmemTransport",
    "available_transports",
    "make_transport",
]
