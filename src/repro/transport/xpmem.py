"""XPMEM transport (single copy after expose/attach).

XPMEM maps a remote process's pages into the local address space
(``xpmem_make`` / ``xpmem_get`` / ``xpmem_attach``), after which
transfers are plain user-space copies.  The catch — the paper's §1
critique via Hashmi et al. — is the expose/attach machinery: the first
touch of a new source buffer pays syscalls plus page faults across the
mapped range, and even cached attachments pay a lookup/validation on
every use.  Great for large repeated buffers, weak for small/medium
messages and freshly allocated collective scratch space.
"""

from __future__ import annotations

from typing import Hashable, Set, Tuple

from ..machine.hardware import NodeHardware
from .base import Transport, WireDescriptor

_CacheKey = Tuple[int, int, Hashable]  # (src rank, dst rank, buffer key)


class XpmemTransport(Transport):
    """User-space single copy behind an attach cache."""

    name = "xpmem"
    supports_peer_views = False
    fast_pt2pt = True

    def delivery_flat_delay(self, src_node):
        return src_node.params.memory.flag_latency

    def __init__(self) -> None:
        self._attached: Set[_CacheKey] = set()

    @property
    def attach_cache_size(self) -> int:
        """Number of cached attachments (test/diagnostic probe)."""
        return len(self._attached)

    def sender_steps(self, node: NodeHardware, desc: WireDescriptor):
        """Publish the (segid, offset, length) header."""
        yield node.sim.timeout(1.0e-7)

    def delivery_steps(self, src_node: NodeHardware, dst_node: NodeHardware,
                       desc: WireDescriptor):
        """Header visibility: one flag hop."""
        yield src_node.sim.timeout(src_node.params.memory.flag_latency)

    def receiver_steps(self, node: NodeHardware, desc: WireDescriptor):
        """Attach (or re-validate) the source range, then copy once."""
        mem = node.params.memory
        key: _CacheKey = (desc.src, desc.dst, desc.buf_key)
        if desc.buf_key is not None and key in self._attached:
            # Cached attachment: lookup + validity check only.
            yield node.sim.timeout(mem.attach_lookup)
        else:
            # xpmem_get + xpmem_attach, then first-touch faults over the
            # mapped range.
            if desc.buf_key is not None:
                self._attached.add(key)
            yield node.sim.timeout(mem.attach_overhead + mem.fault_time(desc.nbytes))
        yield from node.mem_copy(desc.nbytes)

    def sender_flat_time(self, node, desc):
        return 1.0e-7

    def receiver_flat_time(self, node, desc):
        mem = node.params.memory
        copy = node.copy_cost(desc.nbytes)
        key = (desc.src, desc.dst, desc.buf_key)
        if desc.buf_key is not None and key in self._attached:
            return mem.attach_lookup + copy
        if desc.buf_key is not None:
            self._attached.add(key)
        return mem.attach_overhead + mem.fault_time(desc.nbytes) + copy

    def schedule_delivery(self, src_node, dst_node, desc, on_delivered):
        ev = src_node.sim.timeout(src_node.params.memory.flag_latency)
        ev.callbacks.append(lambda _e: on_delivered())
        return ev

    def describe(self) -> str:
        return "xpmem: 1 copy, attach syscalls + page faults on first touch"
