"""Transport factory: build intra-node transports by name."""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import Transport
from .cma import CmaTransport
from .pip_transport import PipTransport
from .posix_shmem import PosixShmemTransport
from .xpmem import XpmemTransport

_FACTORIES: Dict[str, Callable[[], Transport]] = {
    "posix_shmem": PosixShmemTransport,
    "cma": CmaTransport,
    "xpmem": XpmemTransport,
    "pip": PipTransport,
    "pip_sizesync": lambda: PipTransport(size_sync=True),
}


def make_transport(name: str) -> Transport:
    """Instantiate a fresh intra-node transport by registry name.

    A fresh instance matters: transports with caches (XPMEM) must not
    leak amortised state across worlds/libraries.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown transport {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    return factory()


def available_transports() -> List[str]:
    """Names accepted by :func:`make_transport`."""
    return sorted(_FACTORIES)
