"""Machine-parameter calibration utilities.

Real reproductions start from a handful of published microbenchmark
numbers — a pt2pt latency, a stream bandwidth, an adapter message rate
— not from LogGP parameters.  This module converts between the two
directions:

* :func:`nic_from_microbenchmarks` — build :class:`NicParams` from the
  numbers a datasheet/OSU run reports;
* :func:`memory_from_microbenchmarks` — likewise for the memory model;
* :func:`verify_pt2pt` — run the simulator and report how close the
  resulting machine is to its calibration targets (used by tests and
  by anyone porting the model to a new cluster).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine import MachineParams, MemoryParams, NicParams
from .analytic import eager_message_time


def nic_from_microbenchmarks(
    latency_us: float,
    bandwidth_gbps: float,
    message_rate_mps: float,
    overhead_fraction: float = 0.4,
) -> NicParams:
    """NicParams from datasheet-style numbers.

    ``latency_us`` is the osu_latency-style small-message half
    round-trip; it is split between wire latency and the two endpoint
    overheads using ``overhead_fraction`` (the CPU share — ~0.4 on
    commodity stacks).  Bandwidth and message rate map directly to
    ``G`` and ``g``.
    """
    if latency_us <= 0 or bandwidth_gbps <= 0 or message_rate_mps <= 0:
        raise ValueError("calibration targets must be positive")
    if not 0 < overhead_fraction < 1:
        raise ValueError("overhead_fraction must be in (0, 1)")
    total = latency_us * 1e-6
    cpu_share = total * overhead_fraction
    return NicParams(
        latency=total * (1 - overhead_fraction),
        inject_overhead=cpu_share * 0.57,
        recv_overhead=cpu_share * 0.43,
        msg_gap=1.0 / (message_rate_mps * 1e6),
        byte_gap=8.0 / (bandwidth_gbps * 1e9),
    )


def memory_from_microbenchmarks(
    copy_bandwidth_gbs: float,
    node_bandwidth_gbs: float,
    syscall_us: float = 0.4,
    page_fault_us: float = 1.1,
) -> MemoryParams:
    """MemoryParams from single-core and node STREAM-style numbers."""
    if copy_bandwidth_gbs <= 0 or node_bandwidth_gbs < copy_bandwidth_gbs:
        raise ValueError(
            "need 0 < single-core bandwidth <= node aggregate bandwidth"
        )
    return MemoryParams(
        copy_byte_time=1.0 / (copy_bandwidth_gbs * 1e9),
        bus_byte_time=1.0 / (node_bandwidth_gbs * 1e9),
        syscall_overhead=syscall_us * 1e-6,
        page_fault=page_fault_us * 1e-6,
    )


@dataclass(frozen=True)
class CalibrationReport:
    """How a machine model relates to its calibration targets."""

    target_latency_us: float
    model_latency_us: float
    target_bandwidth_gbps: float
    model_bandwidth_gbps: float

    @property
    def latency_error(self) -> float:
        """Relative error of the small-message latency."""
        return abs(self.model_latency_us - self.target_latency_us) / self.target_latency_us

    @property
    def bandwidth_error(self) -> float:
        """Relative error of the link bandwidth."""
        return (abs(self.model_bandwidth_gbps - self.target_bandwidth_gbps)
                / self.target_bandwidth_gbps)

    def ok(self, tolerance: float = 0.25) -> bool:
        """True when both targets are met within ``tolerance``."""
        return self.latency_error <= tolerance and self.bandwidth_error <= tolerance


def verify_pt2pt(params: MachineParams, target_latency_us: float,
                 target_bandwidth_gbps: float) -> CalibrationReport:
    """Check a machine against its pt2pt targets (closed form —
    the analytic model is itself validated against the simulator)."""
    model_latency = eager_message_time(params, 8) * 1e6
    model_bw = params.nic.bandwidth * 8 / 1e9
    return CalibrationReport(
        target_latency_us=target_latency_us,
        model_latency_us=model_latency,
        target_bandwidth_gbps=target_bandwidth_gbps,
        model_bandwidth_gbps=model_bw,
    )
