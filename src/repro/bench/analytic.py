"""Closed-form LogGP cost models.

Algebraic latency predictions for the simple algorithm/machine
combinations where pencil-and-paper works (single rank per node, no
resource contention).  These serve two purposes:

* **simulator validation** — the test suite asserts the DES agrees
  with the algebra within a few percent on these cases, so a
  regression in the event choreography cannot hide;
* **intuition** — the formulas make the paper's round-count argument
  quantitative (`mcoll_allgather_bound` vs `bruck_allgather_time`).

All formulas assume eager messages (``n ≤ eager_limit``) and an
uncongested network; the simulator is the authority everywhere else.
"""

from __future__ import annotations

import math

from ..machine.params import MachineParams


def eager_message_time(params: MachineParams, nbytes: int) -> float:
    """One-way pt2pt latency of an eager inter-node message with a
    pre-posted receive.

    dispatch + o_send + bounce copy + TX pipe + wire latency + RX pipe
    + o_recv + landing copy.  The *receiver's* dispatch overhead is
    off the critical path (it was paid when the receive was posted).
    """
    nic, mem, cpu = params.nic, params.memory, params.cpu
    if nbytes > nic.eager_limit:
        raise ValueError(f"{nbytes} B is not eager (limit {nic.eager_limit})")
    wire = nic.wire_time(nbytes)
    return (
        cpu.dispatch_overhead + nic.inject_overhead + mem.copy_time(nbytes)
        + wire + nic.latency + wire
        + nic.recv_overhead + mem.copy_time(nbytes)
    )


def binomial_depth(n: int) -> int:
    """Critical-path hop count of a binomial tree over ``n`` ranks.

    The deepest leaf is the virtual rank below ``n`` with the most set
    bits (each set bit is one hop), which is ``ceil(log2 n)`` only
    when ``n`` is a power of two.  Along that path every hop is the
    sender's *first* send of its fan-out, so no queueing adds to it.
    """
    if n <= 1:
        return 0
    m = n - 1
    bits = bin(m)[2:]
    best = bin(m).count("1")
    for i, c in enumerate(bits):
        if c == "1":
            # Clear bit i of m, set every lower bit: still < n.
            best = max(best, bits[:i].count("1") + (len(bits) - i - 1))
    return best


def binomial_bcast_time(params: MachineParams, nbytes: int) -> float:
    """Binomial bcast over ``N`` single-rank nodes: the deepest leaf
    sits behind :func:`binomial_depth` sequential hops (the widest
    subtree is served first, so no send-queueing adds to the path)."""
    n_nodes = params.nodes
    if params.ppn != 1:
        raise ValueError("closed form assumes ppn == 1")
    return binomial_depth(n_nodes) * eager_message_time(params, nbytes)


def bruck_allgather_time(params: MachineParams, nbytes: int) -> float:
    """Radix-2 Bruck allgather over ``N`` single-rank nodes.

    Round ``r`` exchanges ``min(2^r, N − 2^r)`` blocks both ways
    (send/recv overlap, so a round costs one message time of that
    size), plus the initial block placement and the final rotation —
    both single memcpy passes.
    """
    n_nodes = params.nodes
    if params.ppn != 1:
        raise ValueError("closed form assumes ppn == 1")
    mem = params.memory
    total = mem.copy_time(nbytes)  # initial placement
    step = 1
    while step < n_nodes:
        block = min(step, n_nodes - step) * nbytes
        # A sendrecv round: the receive must be (re)posted in program
        # order before the send, so its dispatch is on the path.
        total += params.cpu.dispatch_overhead + eager_message_time(params, block)
        step <<= 1
    total += mem.copy_time(n_nodes * nbytes)  # rotation
    return total


def dissemination_barrier_time(params: MachineParams) -> float:
    """Dissemination barrier over ``N`` single-rank nodes:
    ``ceil(log2 N)`` rounds of zero-byte exchanges."""
    n_nodes = params.nodes
    if params.ppn != 1:
        raise ValueError("closed form assumes ppn == 1")
    if n_nodes == 1:
        return 0.0
    rounds = math.ceil(math.log2(n_nodes))
    # Each round is a sendrecv: one extra dispatch for the posted recv.
    return rounds * (params.cpu.dispatch_overhead + eager_message_time(params, 0))


def mcoll_allgather_bound(params: MachineParams, nbytes: int) -> float:
    """A *lower bound* for the multi-object Bruck allgather at full
    geometry (any ppn): inter-node rounds at radix ``P+1`` plus the
    bus-limited parallel distribution of the full result.

    Used to sanity-check the simulator from below, and to show where
    the time goes (distribution dominates at the paper's scale).
    """
    n_nodes, ppn = params.nodes, params.ppn
    mem = params.memory
    radix = ppn + 1
    rounds = max(0, math.ceil(math.log(n_nodes, radix))) if n_nodes > 1 else 0
    round_floor = rounds * (params.nic.latency + params.cpu.dispatch_overhead)
    result_bytes = n_nodes * ppn * nbytes
    # All ppn ranks copy the result concurrently: bounded below by the
    # node bus moving ppn × result bytes.
    distribution = max(
        mem.copy_time(result_bytes),
        ppn * result_bytes * mem.bus_byte_time,
    )
    return round_floor + distribution


def flat_bruck_round_count(world_size: int) -> int:
    """Rounds of the radix-2 Bruck at ``world_size`` ranks."""
    return math.ceil(math.log2(world_size)) if world_size > 1 else 0


def mcoll_round_count(n_nodes: int, ppn: int) -> int:
    """Rounds of the multi-object Bruck (radix ``P+1``)."""
    if n_nodes <= 1:
        return 0
    return math.ceil(math.log(n_nodes, ppn + 1) - 1e-12)
