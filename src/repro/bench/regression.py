"""Model-drift regression guard: golden latency baselines.

The simulator is deterministic, so headline latencies are exactly
reproducible — any change is a *model* change, intended or not.  This
module captures a small grid of golden numbers to JSON and compares a
fresh run against it, flagging drifts beyond a tolerance so parameter
or choreography edits cannot silently move the paper-facing results.

Workflow::

    from repro.bench.regression import capture_baseline, compare_to_baseline
    capture_baseline("benchmarks/golden.json")      # after intended changes
    report = compare_to_baseline("benchmarks/golden.json")
    assert report.ok(), report.format()
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..machine import broadwell_opa
from .harness import bench_collective

#: the golden grid: small but covering every regime the figures use —
#: (collective, per-process bytes, nodes, ppn, library)
GOLDEN_GRID: Tuple[Tuple[str, int, int, int, str], ...] = (
    ("allgather", 64, 16, 6, "MPICH"),
    ("allgather", 64, 16, 6, "PiP-MColl"),
    ("allgather", 4096, 8, 4, "PiP-MColl"),
    ("scatter", 256, 16, 6, "MPICH"),
    ("scatter", 256, 16, 6, "PiP-MColl"),
    ("allreduce", 64, 8, 4, "PiP-MPICH"),
    ("barrier", 0, 8, 4, "PiP-MColl"),
    ("bcast", 1024, 8, 4, "MVAPICH2"),
)

#: the paper-scale grid: Fig. 2's headline point (allgather, 64 B) on
#: the full 128-node × 18-ppn machine, every library in the lineup.
#: Checked by benchmarks/test_a10_paper_scale.py rather than tier-1
#: (a full-scale run per library is a tier-3 cost).
PAPER_GRID: Tuple[Tuple[str, int, int, int, str], ...] = tuple(
    ("allgather", 64, 128, 18, lib)
    for lib in ("IntelMPI", "MPICH", "MVAPICH2", "OpenMPI",
                "PiP-MColl", "PiP-MPICH")
)

Grid = Tuple[Tuple[str, int, int, int, str], ...]


def _key(entry: Tuple[str, int, int, int, str]) -> str:
    coll, nbytes, nodes, ppn, lib = entry
    return f"{lib}/{coll}/{nbytes}B@{nodes}x{ppn}"


def measure_grid(grid: Grid = GOLDEN_GRID) -> Dict[str, float]:
    """Run a golden grid; returns latency (µs) per key."""
    out: Dict[str, float] = {}
    for entry in grid:
        coll, nbytes, nodes, ppn, lib = entry
        point = bench_collective(lib, coll, nbytes,
                                 broadwell_opa(nodes=nodes, ppn=ppn),
                                 warmup=1, iters=1)
        out[_key(entry)] = point.latency_us
    return out


def capture_baseline(path: Union[str, Path],
                     grid: Grid = GOLDEN_GRID) -> Dict[str, float]:
    """Measure a grid and write it as the new golden baseline.

    To re-bless the paper-scale keys too (docs/TESTING.md):
    ``capture_baseline(path, GOLDEN_GRID + PAPER_GRID)``.
    """
    values = measure_grid(grid)
    Path(path).write_text(json.dumps(values, indent=2, sort_keys=True) + "\n")
    return values


@dataclass
class DriftReport:
    """Comparison of a fresh run against the golden baseline."""

    tolerance: float
    drifts: List[Tuple[str, float, float]] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)

    def ok(self) -> bool:
        """True when nothing drifted and nothing is missing."""
        return not self.drifts and not self.missing

    def format(self) -> str:
        """Human-readable drift listing."""
        if self.ok():
            return "no drift"
        lines = [f"model drift (tolerance {self.tolerance:.1%}):"]
        for key, golden, fresh in self.drifts:
            lines.append(
                f"  {key}: golden {golden:.3f} us -> fresh {fresh:.3f} us "
                f"({fresh / golden - 1.0:+.1%})"
            )
        for key in self.missing:
            lines.append(f"  {key}: missing from baseline")
        return "\n".join(lines)


def compare_to_baseline(path: Union[str, Path],
                        tolerance: float = 0.01,
                        grid: Grid = GOLDEN_GRID) -> DriftReport:
    """Measure a grid and diff it against the stored baseline.

    The default tolerance is 1 % — the simulator is deterministic, so
    any real drift is either an intended recalibration (re-capture the
    baseline and say so in EXPERIMENTS.md) or a bug.  Keys present in
    the baseline but not in ``grid`` are ignored, so one golden file
    can hold both the tier-1 grid and the paper-scale grid.
    """
    golden: Dict[str, float] = json.loads(Path(path).read_text())
    fresh = measure_grid(grid)
    report = DriftReport(tolerance=tolerance)
    for key, value in fresh.items():
        if key not in golden:
            report.missing.append(key)
        elif abs(value - golden[key]) > tolerance * golden[key]:
            report.drifts.append((key, golden[key], value))
    return report
