"""Collective profiling: where the simulated time goes.

:func:`profile_collective` runs one collective under a
:class:`~repro.obs.SpanRecorder` and reduces the derived metrics plus
hardware counters into an attribution report: message counts and bytes
per transport, NIC/bus busy time, and the headline latency.  The CLI
exposes it as ``python -m repro profile``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Union

from ..machine import MachineParams
from ..mpilibs import MpiLibrary, make_library
from ..obs import SpanRecorder
from .harness import _buffers, _invoke


@dataclass
class CollectiveProfile:
    """Attribution report for one collective execution."""

    library: str
    collective: str
    nbytes: int
    latency_us: float
    messages_by_transport: Dict[str, int] = field(default_factory=dict)
    bytes_by_transport: Dict[str, int] = field(default_factory=dict)
    nic_tx_busy_us: float = 0.0
    membus_busy_us: float = 0.0
    sim_events: int = 0

    @property
    def total_messages(self) -> int:
        """Messages that crossed any transport (self-sends excluded)."""
        return sum(self.messages_by_transport.values())

    @property
    def total_bytes(self) -> int:
        """Payload bytes moved through transports."""
        return sum(self.bytes_by_transport.values())

    def format(self) -> str:
        """Human-readable report."""
        lines = [
            f"{self.library} {self.collective} {self.nbytes} B: "
            f"{self.latency_us:.2f} us",
            f"  messages: {self.total_messages}  "
            f"payload: {self.total_bytes} B  events: {self.sim_events}",
        ]
        for name in sorted(self.messages_by_transport):
            lines.append(
                f"    {name:14s} {self.messages_by_transport[name]:6d} msgs"
                f"  {self.bytes_by_transport[name]:10d} B"
            )
        lines.append(
            f"  NIC tx busy {self.nic_tx_busy_us:.2f} us, "
            f"membus busy {self.membus_busy_us:.2f} us"
        )
        return "\n".join(lines)


def profile_collective(
    library: Union[str, MpiLibrary],
    collective: str,
    nbytes: int,
    params: MachineParams,
    root: int = 0,
) -> CollectiveProfile:
    """Run one (warm) collective invocation under a span recorder."""
    lib = make_library(library) if isinstance(library, str) else library
    world = lib.make_world(params, functional=False)
    recorder = SpanRecorder()
    world.attach_obs(recorder)
    size = world.comm_world.size
    algo = lib.wrapped(collective, nbytes, size)

    def program(ctx):
        bufs = _buffers(ctx, collective, nbytes, size, root)
        lats = []
        for it in range(2):  # warmup + measured
            yield from ctx.hard_sync()
            if it == 1 and ctx.rank == 0:
                # All ranks are aligned and every warmup delivery has
                # been recorded; wipe the warmup exactly once (closed
                # spans + metrics; in-flight spans survive).
                recorder.reset()
            t0 = ctx.now
            yield from _invoke(algo, ctx, bufs, collective, root)
            lats.append(ctx.now - t0)
        return lats[-1]

    per_rank = world.run(program)
    world.assert_quiescent()
    profile = CollectiveProfile(
        library=lib.profile.name,
        collective=collective,
        nbytes=nbytes,
        latency_us=max(per_rank) * 1e6,
    )
    metrics = recorder.metrics
    profile.messages_by_transport = {
        k: int(v) for k, v in
        metrics.by_label("messages_total", "transport").items()}
    profile.bytes_by_transport = {
        k: int(v) for k, v in
        metrics.by_label("bytes_total", "transport").items()}
    stats = world.stats()
    profile.nic_tx_busy_us = stats["tx_busy_s"] * 1e6
    profile.membus_busy_us = stats["membus_busy_s"] * 1e6
    profile.sim_events = stats["sim_events"]
    return profile


def measure_attribution(
    library: Union[str, MpiLibrary],
    collective: str,
    nbytes: int,
    params: MachineParams,
    functional: bool = False,
    root: int = 0,
):
    """LogGP attribution of one (warm) collective invocation.

    Same pattern as :func:`profile_collective` — fresh world, span
    recorder, one warmup call, recorder wiped at a hard-sync point,
    one measured call — then
    :func:`repro.obs.attribution.attribute` decomposes the measured
    window along its critical path.  Returns the
    :class:`~repro.obs.attribution.Attribution` (components sum to the
    measured window exactly; ``.check()`` asserts it).
    """
    from ..obs import attribute

    lib = make_library(library) if isinstance(library, str) else library
    world = lib.make_world(params, functional=functional)
    recorder = SpanRecorder()
    world.attach_obs(recorder)
    size = world.comm_world.size
    algo = lib.wrapped(collective, nbytes, size)

    def program(ctx):
        bufs = _buffers(ctx, collective, nbytes, size, root)
        for it in range(2):  # warmup + measured
            yield from ctx.hard_sync()
            if it == 1 and ctx.rank == 0:
                recorder.reset()
            yield from _invoke(algo, ctx, bufs, collective, root)

    world.run(program)
    world.assert_quiescent()
    att = attribute(recorder.tree(), collective, params)
    att.check()
    return att
