"""OSU-microbenchmark-style latency harness.

For one (library, collective, message size, machine) point the harness
builds a fresh world, allocates per-rank buffers once (so attach
caches amortise exactly as they would in OSU's loop), then runs
``warmup + iters`` iterations, each preceded by a zero-cost hard sync
so all ranks start together.  The reported latency of an iteration is
the **max across ranks** (OSU's convention for collectives), and the
point's latency is the mean over measured iterations.

Full-scale runs (2304 ranks) default to timing-only buffers; the same
code path with functional buffers is what the correctness suite runs
at small scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..machine import MachineParams
from ..mpilibs import MpiLibrary, make_library
from ..obs import host
from ..runtime.datatypes import FLOAT64
from ..runtime.ops import SUM

#: collectives needing (dtype, op) arguments
_REDUCING = {"allreduce", "reduce", "reduce_scatter"}
#: collectives with a root argument
_ROOTED = {"bcast", "gather", "scatter", "reduce"}


@dataclass(frozen=True)
class BenchPoint:
    """One measured (library, collective, size) point."""

    library: str
    collective: str
    nbytes: int
    latency_us: float  # mean over iterations of max-across-ranks
    min_us: float
    max_us: float
    iterations: Tuple[float, ...]  # per-iteration max-across-ranks (µs)
    #: the world's post-run hardware/protocol counters (retransmits,
    #: injected faults, ...); chaos sweeps read these
    stats: Optional[dict] = None
    #: machine geometry of the run (record keys need it)
    nodes: int = 0
    ppn: int = 0
    #: ResourceMonitor.summary() over the measured window (resources=True)
    resources: Optional[dict] = None
    #: Attribution.as_dict() of a profiled call (attribution=True)
    attribution: Optional[dict] = None

    def to_record(self, **meta):
        """This point as a schema'd :class:`~repro.bench.record.BenchRecord`."""
        from .record import BenchRecord

        return BenchRecord(
            library=self.library,
            collective=self.collective,
            nbytes=self.nbytes,
            nodes=self.nodes,
            ppn=self.ppn,
            latency_us=self.latency_us,
            min_us=self.min_us,
            max_us=self.max_us,
            iterations_us=list(self.iterations),
            stats=self.stats,
            resources=self.resources,
            attribution=self.attribution,
            meta=dict(meta),
        )


def _buffers(ctx, collective: str, nbytes: int, size: int, root: int):
    """Allocate the per-rank buffers a collective needs (once)."""
    if collective == "bcast":
        return {"view": ctx.alloc(nbytes).view()}
    if collective == "scatter":
        send = ctx.alloc(nbytes * size) if ctx.comm_world.to_comm(ctx.rank) == root else None
        return {"send": send.view() if send else None, "recv": ctx.alloc(nbytes).view()}
    if collective == "gather":
        recv = ctx.alloc(nbytes * size) if ctx.comm_world.to_comm(ctx.rank) == root else None
        return {"send": ctx.alloc(nbytes).view(), "recv": recv.view() if recv else None}
    if collective == "allgather":
        return {"send": ctx.alloc(nbytes).view(), "recv": ctx.alloc(nbytes * size).view()}
    if collective == "allreduce":
        return {"send": ctx.alloc(nbytes).view(), "recv": ctx.alloc(nbytes).view()}
    if collective == "reduce":
        recv = ctx.alloc(nbytes) if ctx.comm_world.to_comm(ctx.rank) == root else None
        return {"send": ctx.alloc(nbytes).view(), "recv": recv.view() if recv else None}
    if collective == "alltoall":
        return {"send": ctx.alloc(nbytes * size).view(),
                "recv": ctx.alloc(nbytes * size).view()}
    if collective == "reduce_scatter":
        return {"send": ctx.alloc(nbytes * size).view(), "recv": ctx.alloc(nbytes).view()}
    if collective == "barrier":
        return {}
    raise KeyError(f"unknown collective {collective!r}")


def _invoke(algo, ctx, bufs, collective: str, root: int):
    """One collective call with family-appropriate arguments."""
    if collective == "bcast":
        yield from algo(ctx, bufs["view"], root=root)
    elif collective == "scatter":
        yield from algo(ctx, bufs["send"], bufs["recv"], root=root)
    elif collective == "gather":
        yield from algo(ctx, bufs["send"], bufs["recv"], root=root)
    elif collective == "allgather":
        yield from algo(ctx, bufs["send"], bufs["recv"])
    elif collective == "allreduce":
        yield from algo(ctx, bufs["send"], bufs["recv"], FLOAT64, SUM)
    elif collective == "reduce":
        yield from algo(ctx, bufs["send"], bufs["recv"], FLOAT64, SUM, root=root)
    elif collective == "alltoall":
        yield from algo(ctx, bufs["send"], bufs["recv"])
    elif collective == "reduce_scatter":
        yield from algo(ctx, bufs["send"], bufs["recv"], FLOAT64, SUM)
    elif collective == "barrier":
        yield from algo(ctx)
    else:  # pragma: no cover - guarded by _buffers
        raise KeyError(collective)


def bench_collective(
    library: Union[str, MpiLibrary],
    collective: str,
    nbytes: int,
    params: MachineParams,
    warmup: int = 1,
    iters: int = 3,
    functional: bool = False,
    root: int = 0,
    faults=None,
    reliable: bool = False,
    fastpath: Optional[bool] = None,
    resources: bool = False,
    attribution: bool = False,
    engine=None,
    cache=None,
) -> BenchPoint:
    """Measure one point (see module docstring).

    ``faults`` (a :class:`~repro.faults.FaultPlan`) and ``reliable``
    turn the measurement into a chaos point: same harness, same
    timing convention, lossy wire underneath.  ``fastpath`` forwards
    to :class:`~repro.runtime.world.World` (``False`` forces the
    reference event path — what the perf-regression gate compares
    against).  ``engine`` selects the simulation engine — a name like
    ``"sharded:8x4"`` or an :class:`~repro.sim.EngineSpec`; see
    ``docs/ENGINE.md`` for the selection matrix.

    ``resources=True`` attaches a
    :class:`~repro.obs.resources.ResourceMonitor` (fast-path safe) and
    fills ``point.resources`` with its summary over the measured
    iterations (warmup excluded).  ``attribution=True`` additionally
    profiles one span-traced call in a fresh world
    (:func:`repro.bench.breakdown.measure_attribution`) and fills
    ``point.attribution`` — the timing numbers still come from the
    untraced run.

    ``cache`` (a directory path or :class:`~repro.service.ResultCache`)
    routes the point through the content-addressed result cache: a
    warm cell costs one file read and returns a byte-identical point.
    Chaos points (``faults``/``reliable``), forced engine paths
    (``fastpath`` not None), and non-content-addressable libraries
    bypass the cache and measure directly — the cache only ever holds
    clean, reconstructable measurements (see ``docs/SERVICE.md``).
    """
    if (cache is not None and faults is None and not reliable
            and fastpath is None):
        from ..service import CacheKeyError, cached_bench_collective

        try:
            return cached_bench_collective(
                library, collective, nbytes, params,
                cache=cache, warmup=warmup, iters=iters,
                functional=functional, root=root, engine=engine,
                resources=resources, attribution=attribution,
            )
        except CacheKeyError:
            pass  # unaddressable cell → fall through to direct measure
    tracer = host.active()
    t_cell = tracer.clock() if tracer is not None else 0.0
    lib = make_library(library) if isinstance(library, str) else library
    if warmup < 0 or iters < 1:
        raise ValueError("need warmup >= 0 and iters >= 1")
    world = lib.make_world(params, functional=functional,
                           faults=faults, reliable=reliable,
                           fastpath=fastpath, resources=resources,
                           engine=engine)
    size = world.comm_world.size
    algo = lib.wrapped(collective, nbytes, size)
    monitor = world.resources

    def program(ctx):
        bufs = _buffers(ctx, collective, nbytes, size, root)
        lats: List[float] = []
        for i in range(warmup + iters):
            yield from ctx.hard_sync()
            if i == warmup and ctx.rank == 0 and monitor is not None:
                # All ranks sit at the same hard-sync instant and every
                # cost is paid strictly later, so wiping here scopes
                # the telemetry window to the measured iterations.
                monitor.reset()
            t0 = ctx.now
            yield from _invoke(algo, ctx, bufs, collective, root)
            lats.append(ctx.now - t0)
        return lats[warmup:]

    per_rank = world.run(program)
    world.assert_quiescent()
    # Iteration latency = max across ranks (OSU collective convention).
    per_iter_us = tuple(
        max(per_rank[r][i] for r in range(size)) * 1e6 for i in range(iters)
    )
    attr = None
    if attribution:
        from .breakdown import measure_attribution

        attr = measure_attribution(lib, collective, nbytes, params,
                                   functional=functional, root=root).as_dict()
    point = BenchPoint(
        library=lib.profile.name,
        collective=collective,
        nbytes=nbytes,
        latency_us=sum(per_iter_us) / len(per_iter_us),
        min_us=min(per_iter_us),
        max_us=max(per_iter_us),
        iterations=per_iter_us,
        stats=world.stats(),
        nodes=params.nodes,
        ppn=params.ppn,
        resources=monitor.summary() if monitor is not None else None,
        attribution=attr,
    )
    if tracer is not None:
        tracer.span_at(
            "bench.cell", t_cell, tracer.clock(), track="bench",
            cat="bench",
            cell=f"{point.library}/{collective}/{nbytes}B"
                 f"@{params.nodes}x{params.ppn}")
    return point


def single_leader_allgather(
    nbytes: int,
    params: MachineParams,
    warmup: int = 1,
    iters: int = 3,
    functional: bool = False,
    resources: bool = False,
) -> BenchPoint:
    """The single-object Fig. 2 baseline as a benchable point.

    Every lineup library at small sizes selects a *flat* allgather, so
    the paper's "single-leader idles P−1 NICs per node" foil has to be
    timed explicitly: ``hier_allgather`` (node gather → leader Bruck →
    node bcast) over the same PiP transport PiP-MColl uses.  Reported
    under the synthetic library name ``"SingleLeader"`` — it is a
    schedule arm, not a registry library, so library-enumeration tests
    stay untouched.
    """
    from ..collectives import hier_allgather
    from ..runtime import World

    if warmup < 0 or iters < 1:
        raise ValueError("need warmup >= 0 and iters >= 1")
    world = World(params, intra="pip", functional=functional,
                  resources=resources)
    size = world.comm_world.size
    monitor = world.resources

    def program(ctx):
        send = ctx.alloc(nbytes)
        recv = ctx.alloc(nbytes * size)
        lats: List[float] = []
        for i in range(warmup + iters):
            yield from ctx.hard_sync()
            if i == warmup and ctx.rank == 0 and monitor is not None:
                monitor.reset()
            t0 = ctx.now
            yield from hier_allgather(ctx, send.view(), recv.view())
            lats.append(ctx.now - t0)
        return lats[warmup:]

    per_rank = world.run(program)
    world.assert_quiescent()
    per_iter_us = tuple(
        max(per_rank[r][i] for r in range(size)) * 1e6 for i in range(iters)
    )
    return BenchPoint(
        library="SingleLeader",
        collective="allgather",
        nbytes=nbytes,
        latency_us=sum(per_iter_us) / len(per_iter_us),
        min_us=min(per_iter_us),
        max_us=max(per_iter_us),
        iterations=per_iter_us,
        stats=world.stats(),
        nodes=params.nodes,
        ppn=params.ppn,
        resources=monitor.summary() if monitor is not None else None,
    )


@dataclass
class Sweep:
    """A (collective × libraries × sizes) result grid."""

    collective: str
    params_name: str
    sizes: List[int]
    libraries: List[str]
    points: Dict[Tuple[str, int], BenchPoint] = field(default_factory=dict)

    def latency(self, library: str, nbytes: int) -> float:
        """Latency (µs) of one grid point."""
        return self.points[(library, nbytes)].latency_us

    def best_other(self, target: str, nbytes: int) -> Tuple[str, float]:
        """(name, µs) of the fastest non-``target`` library at a size."""
        candidates = [
            (self.latency(lib, nbytes), lib)
            for lib in self.libraries
            if lib != target
        ]
        lat, lib = min(candidates)
        return lib, lat

    def speedup(self, target: str, nbytes: int) -> float:
        """fastest-other / target at one size (>1 means target wins)."""
        _, other = self.best_other(target, nbytes)
        return other / self.latency(target, nbytes)

    def best_speedup(self, target: str) -> Tuple[int, float]:
        """(size, factor) where the target's advantage peaks."""
        best = max(self.sizes, key=lambda s: self.speedup(target, s))
        return best, self.speedup(target, best)


def run_sweep(
    collective: str,
    sizes: List[int],
    params: MachineParams,
    libraries: Optional[List[str]] = None,
    warmup: int = 1,
    iters: int = 3,
    functional: bool = False,
    root: int = 0,
    resources: bool = False,
    attribution: bool = False,
    engine: "Union[str, EngineSpec, None]" = None,
    cache=None,
    workers: int = 1,
    progress=None,
) -> Sweep:
    """Benchmark ``collective`` across libraries × sizes.

    ``libraries`` entries may be names, ``tuned:<db>`` specs, or
    :class:`MpiLibrary` instances; the sweep's grid is keyed by each
    library's profile name either way.  ``engine`` selects the
    simulation engine for every point (see :mod:`repro.sim.spec`).

    ``cache`` (directory path or :class:`~repro.service.ResultCache`)
    and ``workers`` route the grid through the sweep service's
    :class:`~repro.service.SweepJobQueue`: cells are deduplicated,
    warm cells are cache hits, cold cells are batched across forked
    worker processes, and ``progress`` (a callable) streams per-cell
    events.  Grid contents are byte-identical either way.
    """
    from ..mpilibs import PAPER_LINEUP

    entries = list(libraries) if libraries is not None else list(PAPER_LINEUP)
    resolved = [make_library(lib) for lib in entries]
    libs = [lib.profile.name for lib in resolved]
    sweep = Sweep(collective, params.name, list(sizes), libs)
    if cache is not None or workers > 1 or progress is not None:
        from ..service import SweepJobQueue, SweepRequest

        requests = [
            SweepRequest(library=lib, collective=collective, nbytes=nbytes,
                         params=params, warmup=warmup, iters=iters,
                         functional=functional, root=root, engine=engine,
                         resources=resources, attribution=attribution)
            for lib in resolved for nbytes in sizes
        ]
        queue = SweepJobQueue(cache=cache, workers=workers,
                              on_event=progress)
        points = queue.run(requests)
        it = iter(points)
        for name in libs:
            for nbytes in sizes:
                sweep.points[(name, nbytes)] = next(it)
        return sweep
    for name, lib in zip(libs, resolved):
        for nbytes in sizes:
            sweep.points[(name, nbytes)] = bench_collective(
                lib, collective, nbytes, params,
                warmup=warmup, iters=iters, functional=functional, root=root,
                resources=resources, attribution=attribution, engine=engine,
            )
    return sweep
