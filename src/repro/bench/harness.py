"""OSU-microbenchmark-style latency harness.

For one (library, collective, message size, machine) point the harness
builds a fresh world, allocates per-rank buffers once (so attach
caches amortise exactly as they would in OSU's loop), then runs
``warmup + iters`` iterations, each preceded by a zero-cost hard sync
so all ranks start together.  The reported latency of an iteration is
the **max across ranks** (OSU's convention for collectives), and the
point's latency is the mean over measured iterations.

Full-scale runs (2304 ranks) default to timing-only buffers; the same
code path with functional buffers is what the correctness suite runs
at small scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..machine import MachineParams
from ..mpilibs import MpiLibrary, make_library
from ..runtime.datatypes import FLOAT64
from ..runtime.ops import SUM

#: collectives needing (dtype, op) arguments
_REDUCING = {"allreduce", "reduce", "reduce_scatter"}
#: collectives with a root argument
_ROOTED = {"bcast", "gather", "scatter", "reduce"}


@dataclass(frozen=True)
class BenchPoint:
    """One measured (library, collective, size) point."""

    library: str
    collective: str
    nbytes: int
    latency_us: float  # mean over iterations of max-across-ranks
    min_us: float
    max_us: float
    iterations: Tuple[float, ...]  # per-iteration max-across-ranks (µs)
    #: the world's post-run hardware/protocol counters (retransmits,
    #: injected faults, ...); chaos sweeps read these
    stats: Optional[dict] = None


def _buffers(ctx, collective: str, nbytes: int, size: int, root: int):
    """Allocate the per-rank buffers a collective needs (once)."""
    if collective == "bcast":
        return {"view": ctx.alloc(nbytes).view()}
    if collective == "scatter":
        send = ctx.alloc(nbytes * size) if ctx.comm_world.to_comm(ctx.rank) == root else None
        return {"send": send.view() if send else None, "recv": ctx.alloc(nbytes).view()}
    if collective == "gather":
        recv = ctx.alloc(nbytes * size) if ctx.comm_world.to_comm(ctx.rank) == root else None
        return {"send": ctx.alloc(nbytes).view(), "recv": recv.view() if recv else None}
    if collective == "allgather":
        return {"send": ctx.alloc(nbytes).view(), "recv": ctx.alloc(nbytes * size).view()}
    if collective == "allreduce":
        return {"send": ctx.alloc(nbytes).view(), "recv": ctx.alloc(nbytes).view()}
    if collective == "reduce":
        recv = ctx.alloc(nbytes) if ctx.comm_world.to_comm(ctx.rank) == root else None
        return {"send": ctx.alloc(nbytes).view(), "recv": recv.view() if recv else None}
    if collective == "alltoall":
        return {"send": ctx.alloc(nbytes * size).view(),
                "recv": ctx.alloc(nbytes * size).view()}
    if collective == "reduce_scatter":
        return {"send": ctx.alloc(nbytes * size).view(), "recv": ctx.alloc(nbytes).view()}
    if collective == "barrier":
        return {}
    raise KeyError(f"unknown collective {collective!r}")


def _invoke(algo, ctx, bufs, collective: str, root: int):
    """One collective call with family-appropriate arguments."""
    if collective == "bcast":
        yield from algo(ctx, bufs["view"], root=root)
    elif collective == "scatter":
        yield from algo(ctx, bufs["send"], bufs["recv"], root=root)
    elif collective == "gather":
        yield from algo(ctx, bufs["send"], bufs["recv"], root=root)
    elif collective == "allgather":
        yield from algo(ctx, bufs["send"], bufs["recv"])
    elif collective == "allreduce":
        yield from algo(ctx, bufs["send"], bufs["recv"], FLOAT64, SUM)
    elif collective == "reduce":
        yield from algo(ctx, bufs["send"], bufs["recv"], FLOAT64, SUM, root=root)
    elif collective == "alltoall":
        yield from algo(ctx, bufs["send"], bufs["recv"])
    elif collective == "reduce_scatter":
        yield from algo(ctx, bufs["send"], bufs["recv"], FLOAT64, SUM)
    elif collective == "barrier":
        yield from algo(ctx)
    else:  # pragma: no cover - guarded by _buffers
        raise KeyError(collective)


def bench_collective(
    library: Union[str, MpiLibrary],
    collective: str,
    nbytes: int,
    params: MachineParams,
    warmup: int = 1,
    iters: int = 3,
    functional: bool = False,
    root: int = 0,
    faults=None,
    reliable: bool = False,
    fastpath: Optional[bool] = None,
) -> BenchPoint:
    """Measure one point (see module docstring).

    ``faults`` (a :class:`~repro.faults.FaultPlan`) and ``reliable``
    turn the measurement into a chaos point: same harness, same
    timing convention, lossy wire underneath.  ``fastpath`` forwards
    to :class:`~repro.runtime.world.World` (``False`` forces the
    reference event path — what the perf-regression gate compares
    against).
    """
    lib = make_library(library) if isinstance(library, str) else library
    if warmup < 0 or iters < 1:
        raise ValueError("need warmup >= 0 and iters >= 1")
    world = lib.make_world(params, functional=functional,
                           faults=faults, reliable=reliable,
                           fastpath=fastpath)
    size = world.comm_world.size
    algo = lib.wrapped(collective, nbytes, size)

    def program(ctx):
        bufs = _buffers(ctx, collective, nbytes, size, root)
        lats: List[float] = []
        for _ in range(warmup + iters):
            yield from ctx.hard_sync()
            t0 = ctx.now
            yield from _invoke(algo, ctx, bufs, collective, root)
            lats.append(ctx.now - t0)
        return lats[warmup:]

    per_rank = world.run(program)
    world.assert_quiescent()
    # Iteration latency = max across ranks (OSU collective convention).
    per_iter_us = tuple(
        max(per_rank[r][i] for r in range(size)) * 1e6 for i in range(iters)
    )
    return BenchPoint(
        library=lib.profile.name,
        collective=collective,
        nbytes=nbytes,
        latency_us=sum(per_iter_us) / len(per_iter_us),
        min_us=min(per_iter_us),
        max_us=max(per_iter_us),
        iterations=per_iter_us,
        stats=world.stats(),
    )


@dataclass
class Sweep:
    """A (collective × libraries × sizes) result grid."""

    collective: str
    params_name: str
    sizes: List[int]
    libraries: List[str]
    points: Dict[Tuple[str, int], BenchPoint] = field(default_factory=dict)

    def latency(self, library: str, nbytes: int) -> float:
        """Latency (µs) of one grid point."""
        return self.points[(library, nbytes)].latency_us

    def best_other(self, target: str, nbytes: int) -> Tuple[str, float]:
        """(name, µs) of the fastest non-``target`` library at a size."""
        candidates = [
            (self.latency(lib, nbytes), lib)
            for lib in self.libraries
            if lib != target
        ]
        lat, lib = min(candidates)
        return lib, lat

    def speedup(self, target: str, nbytes: int) -> float:
        """fastest-other / target at one size (>1 means target wins)."""
        _, other = self.best_other(target, nbytes)
        return other / self.latency(target, nbytes)

    def best_speedup(self, target: str) -> Tuple[int, float]:
        """(size, factor) where the target's advantage peaks."""
        best = max(self.sizes, key=lambda s: self.speedup(target, s))
        return best, self.speedup(target, best)


def run_sweep(
    collective: str,
    sizes: List[int],
    params: MachineParams,
    libraries: Optional[List[str]] = None,
    warmup: int = 1,
    iters: int = 3,
    functional: bool = False,
    root: int = 0,
) -> Sweep:
    """Benchmark ``collective`` across libraries × sizes."""
    from ..mpilibs import PAPER_LINEUP

    libs = list(libraries) if libraries is not None else list(PAPER_LINEUP)
    sweep = Sweep(collective, params.name, list(sizes), libs)
    for lib in libs:
        for nbytes in sizes:
            sweep.points[(lib, nbytes)] = bench_collective(
                lib, collective, nbytes, params,
                warmup=warmup, iters=iters, functional=functional, root=root,
            )
    return sweep
