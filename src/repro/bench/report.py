"""Table/series formatting for benchmark output.

`format_paper_table` renders a sweep the way the paper's figures read:
one row per message size, one column per library, latencies in µs —
with entries more than ``exclude_factor`` × the PiP-MColl time marked
the way the paper excluded them from its plots.
"""

from __future__ import annotations

from typing import List, Optional

from .harness import Sweep


def _fmt_size(nbytes: int) -> str:
    if nbytes >= 1024 and nbytes % 1024 == 0:
        return f"{nbytes // 1024} KiB"
    return f"{nbytes} B"


def format_paper_table(sweep: Sweep, target: str = "PiP-MColl",
                       exclude_factor: Optional[float] = 4.0) -> str:
    """Figure-style latency table (µs), with paper-style exclusions."""
    cols = sweep.libraries
    header = ["size"] + cols + [f"speedup vs best other"]
    rows: List[List[str]] = []
    for nbytes in sweep.sizes:
        row = [_fmt_size(nbytes)]
        target_lat = sweep.latency(target, nbytes) if target in cols else None
        for lib in cols:
            lat = sweep.latency(lib, nbytes)
            if (
                exclude_factor is not None
                and target_lat is not None
                and lib != target
                and lat > exclude_factor * target_lat
            ):
                row.append(f">({exclude_factor:.0f}x)")
            else:
                row.append(f"{lat:9.2f}")
        if target in cols:
            row.append(f"{sweep.speedup(target, nbytes):5.2f}x")
        else:
            row.append("-")
        rows.append(row)
    widths = [max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))]
    lines = [
        f"{sweep.collective} latency (us), machine={sweep.params_name}",
        "  ".join(h.rjust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(sweep: Sweep) -> str:
    """Machine-readable series (CSV-ish), one line per point."""
    lines = ["collective,library,nbytes,latency_us,min_us,max_us"]
    for lib in sweep.libraries:
        for nbytes in sweep.sizes:
            p = sweep.points[(lib, nbytes)]
            lines.append(
                f"{sweep.collective},{lib},{nbytes},"
                f"{p.latency_us:.3f},{p.min_us:.3f},{p.max_us:.3f}"
            )
    return "\n".join(lines)


def summarize_speedups(sweep: Sweep, target: str = "PiP-MColl") -> str:
    """One line per size: target vs the fastest other library."""
    lines = []
    for nbytes in sweep.sizes:
        other_name, other_lat = sweep.best_other(target, nbytes)
        lines.append(
            f"{_fmt_size(nbytes):>8}: {target} {sweep.latency(target, nbytes):8.2f} us"
            f" vs best-other {other_name} {other_lat:8.2f} us"
            f" -> {sweep.speedup(target, nbytes):5.2f}x"
        )
    size, factor = sweep.best_speedup(target)
    lines.append(f"best speedup: {factor:.2f}x at {_fmt_size(size)}")
    return "\n".join(lines)
