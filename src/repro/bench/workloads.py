"""Synthetic application workloads: collective traces and replay.

Figures measure one collective at a time; applications issue *mixes*.
A :class:`CollectiveTrace` is a deterministic sequence of collective
calls (name, per-process bytes); generators below synthesize traces
shaped like common HPC/ML communication patterns, and
:func:`replay_trace` executes a whole trace under a library model and
reports the end-to-end communication time — the number an application
user actually feels.

All generators take an explicit ``seed`` and use their own
``random.Random``, so traces are reproducible across runs and
machines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from ..machine import MachineParams
from ..mpilibs import MpiLibrary, make_library
from .harness import _buffers, _invoke

Call = Tuple[str, int]  # (collective, per-process bytes)


@dataclass(frozen=True)
class CollectiveTrace:
    """A reproducible sequence of collective calls."""

    name: str
    calls: Tuple[Call, ...]

    def __len__(self) -> int:
        return len(self.calls)

    def total_bytes(self) -> int:
        """Sum of per-process payload bytes across the trace."""
        return sum(nbytes for _c, nbytes in self.calls)

    def histogram(self) -> Dict[str, int]:
        """Call count per collective."""
        out: Dict[str, int] = {}
        for coll, _n in self.calls:
            out[coll] = out.get(coll, 0) + 1
        return out


def uniform_mix(n_calls: int = 50, seed: int = 1,
                collectives: Sequence[str] = ("allgather", "allreduce",
                                              "bcast", "barrier"),
                sizes: Sequence[int] = (16, 64, 256, 1024)) -> CollectiveTrace:
    """A uniformly random mix (stress test, no structure)."""
    rng = random.Random(seed)
    calls = tuple(
        (rng.choice(list(collectives)),
         0 if rng.random() < 0.1 else rng.choice(list(sizes)))
        for _ in range(n_calls)
    )
    calls = tuple((c, 0 if c == "barrier" else max(n, 8)) for c, n in calls)
    return CollectiveTrace(f"uniform_mix(seed={seed})", calls)


def stencil_app(steps: int = 30, check_every: int = 5,
                reduce_bytes: int = 8) -> CollectiveTrace:
    """An iterative PDE solver's collective skeleton: a tiny allreduce
    every ``check_every`` steps plus a final gather of diagnostics."""
    calls: List[Call] = []
    for step in range(1, steps + 1):
        if step % check_every == 0:
            calls.append(("allreduce", reduce_bytes))
    calls.append(("gather", 64))
    return CollectiveTrace(f"stencil_app(steps={steps})", tuple(calls))


def training_step_mix(layers: Sequence[int] = (256, 1024, 4096, 1024, 256),
                      steps: int = 5) -> CollectiveTrace:
    """Data-parallel training: one allreduce per layer gradient per
    step, plus a broadcast of updated scalars."""
    calls: List[Call] = []
    for _ in range(steps):
        for layer_bytes in layers:
            calls.append(("allreduce", layer_bytes))
        calls.append(("bcast", 64))
    return CollectiveTrace(f"training_step_mix(steps={steps})", tuple(calls))


def bcast_storm(n_keys: int = 16, nrows: int = 64,
                ncols: int = 64) -> CollectiveTrace:
    """Coupled-code matrix shipping (the EmbASI pattern recorded in
    SNIPPETS.md): one tiny shape broadcast, one key-table broadcast,
    then a dense float64 matrix broadcast per key, closed by a scalar
    broadcast — a root-heavy storm mixing 8 B headers with multi-KB
    payloads, exactly the regime where per-call constant costs
    dominate."""
    calls: List[Call] = [
        ("bcast", 8),                     # data shape (2 x int16, padded)
        ("bcast", max(n_keys * 4, 8)),    # key table (n_keys x 2 x int16)
    ]
    calls.extend(("bcast", nrows * ncols * 8) for _ in range(n_keys))
    calls.append(("bcast", 8))            # trailing scalar broadcast
    return CollectiveTrace(f"bcast_storm(keys={n_keys})", tuple(calls))


def analytics_shuffle(partitions_bytes: int = 512,
                      rounds: int = 4) -> CollectiveTrace:
    """Shuffle-heavy analytics: alltoall rounds with barrier epochs."""
    calls: List[Call] = []
    for _ in range(rounds):
        calls.append(("alltoall", partitions_bytes))
        calls.append(("barrier", 0))
    calls.append(("allgather", 64))
    return CollectiveTrace(f"analytics_shuffle(rounds={rounds})", tuple(calls))


@dataclass
class ReplayResult:
    """End-to-end numbers for one (library, trace) replay."""

    library: str
    trace: str
    total_us: float
    per_call_us: List[float] = field(default_factory=list)

    def slowest_call(self) -> Tuple[int, float]:
        """(index, µs) of the most expensive call."""
        idx = max(range(len(self.per_call_us)), key=self.per_call_us.__getitem__)
        return idx, self.per_call_us[idx]


def replay_trace(library: Union[str, MpiLibrary], trace: CollectiveTrace,
                 params: MachineParams, functional: bool = False
                 ) -> ReplayResult:
    """Run every call of ``trace`` back-to-back under ``library``.

    Buffers are allocated once per (collective, size) pair, as an
    application would; call latency is max-across-ranks.
    """
    lib = make_library(library) if isinstance(library, str) else library
    world = lib.make_world(params, functional=functional)
    size = world.comm_world.size

    def program(ctx):
        cache = {}
        laps: List[float] = []
        for coll, nbytes in trace.calls:
            key = (coll, nbytes)
            if key not in cache:
                cache[key] = _buffers(ctx, coll, nbytes, size, 0)
            algo = lib.wrapped(coll, nbytes, size)
            yield from ctx.hard_sync()
            t0 = ctx.now
            yield from _invoke(algo, ctx, cache[key], coll, 0)
            laps.append(ctx.now - t0)
        return laps

    per_rank = world.run(program)
    world.assert_quiescent()
    per_call = [
        max(per_rank[r][i] for r in range(size)) * 1e6
        for i in range(len(trace.calls))
    ]
    return ReplayResult(
        library=lib.profile.name,
        trace=trace.name,
        total_us=sum(per_call),
        per_call_us=per_call,
    )


def compare_on_trace(trace: CollectiveTrace, params: MachineParams,
                     libraries: Sequence[str]) -> Dict[str, ReplayResult]:
    """Replay one trace under several libraries."""
    return {name: replay_trace(name, trace, params) for name in libraries}
