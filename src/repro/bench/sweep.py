"""Generic parameter-sweep driver (scale sweeps, CSV export).

`run_sweep` in :mod:`repro.bench.harness` sweeps *message sizes*; the
drivers here sweep **machine shape** — node count, ppn, or fabric
oversubscription — holding the workload fixed.  Results come back as
:class:`ScaleSweep` grids that render to CSV for external plotting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..machine import FabricParams, broadwell_opa
from ..mpilibs import make_library
from .harness import BenchPoint, bench_collective


@dataclass
class ScaleSweep:
    """Latency grid over (library × machine-shape point)."""

    collective: str
    nbytes: int
    axis_name: str
    axis: List
    libraries: List[str]
    points: Dict[Tuple[str, object], BenchPoint] = field(default_factory=dict)

    def latency(self, library: str, value) -> float:
        """Latency (µs) at one axis point."""
        return self.points[(library, value)].latency_us

    def speedup(self, target: str, value) -> float:
        """fastest-other / target at one axis point."""
        others = [self.latency(lib, value) for lib in self.libraries
                  if lib != target]
        return min(others) / self.latency(target, value)

    def to_csv(self) -> str:
        """CSV: axis value, then one latency column per library."""
        lines = [",".join([self.axis_name] + self.libraries)]
        for value in self.axis:
            row = [str(value)] + [
                f"{self.latency(lib, value):.3f}" for lib in self.libraries
            ]
            lines.append(",".join(row))
        return "\n".join(lines)


def node_scaling_sweep(
    collective: str,
    nbytes: int,
    node_counts: Sequence[int],
    ppn: int = 18,
    libraries: Sequence[str] = ("MPICH", "PiP-MColl"),
    warmup: int = 1,
    iters: int = 1,
) -> ScaleSweep:
    """Latency vs node count at fixed ppn."""
    sweep = ScaleSweep(collective, nbytes, "nodes", list(node_counts),
                       list(libraries))
    for nodes in node_counts:
        params = broadwell_opa(nodes=nodes, ppn=ppn)
        for lib in libraries:
            sweep.points[(lib, nodes)] = bench_collective(
                lib, collective, nbytes, params, warmup=warmup, iters=iters)
    return sweep


def ppn_scaling_sweep(
    collective: str,
    nbytes: int,
    ppns: Sequence[int],
    nodes: int = 32,
    libraries: Sequence[str] = ("MPICH", "PiP-MColl"),
    warmup: int = 1,
    iters: int = 1,
) -> ScaleSweep:
    """Latency vs ranks-per-node at fixed node count."""
    sweep = ScaleSweep(collective, nbytes, "ppn", list(ppns), list(libraries))
    for ppn in ppns:
        params = broadwell_opa(nodes=nodes, ppn=ppn)
        for lib in libraries:
            sweep.points[(lib, ppn)] = bench_collective(
                lib, collective, nbytes, params, warmup=warmup, iters=iters)
    return sweep


def oversubscription_sweep(
    collective: str,
    nbytes: int,
    factors: Sequence[float],
    nodes: int = 32,
    ppn: int = 8,
    pod_size: int = 8,
    libraries: Sequence[str] = ("MPICH", "PiP-MColl"),
) -> ScaleSweep:
    """Latency vs fabric oversubscription (needs the fabric extension)."""
    from ..runtime import World
    from .harness import _buffers, _invoke

    sweep = ScaleSweep(collective, nbytes, "oversubscription", list(factors),
                       list(libraries))
    for factor in factors:
        for lib_name in libraries:
            lib = make_library(lib_name)
            world = World(
                broadwell_opa(nodes=nodes, ppn=ppn),
                intra=lib.profile.intra,
                functional=False,
                fabric=FabricParams(pod_size=pod_size, oversubscription=factor),
            )
            size = world.comm_world.size
            algo = lib.wrapped(collective, nbytes, size)

            def program(ctx):
                bufs = _buffers(ctx, collective, nbytes, size, 0)
                lats = []
                for _ in range(2):
                    yield from ctx.hard_sync()
                    t0 = ctx.now
                    yield from _invoke(algo, ctx, bufs, collective, 0)
                    lats.append(ctx.now - t0)
                return lats[-1]

            lat_us = max(world.run(program)) * 1e6
            sweep.points[(lib_name, factor)] = BenchPoint(
                library=lib_name, collective=collective, nbytes=nbytes,
                latency_us=lat_us, min_us=lat_us, max_us=lat_us,
                iterations=(lat_us,),
            )
    return sweep
