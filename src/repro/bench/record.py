"""BenchRecord: the standard benchmark-result JSON schema.

Every benchmark that wants to feed the reporting pipeline
(``python -m repro report``) emits records of this shape into
``benchmarks/results/*.records.json``.  A record is one measured
(library, collective, size, geometry) point plus optional resource
telemetry and LogGP attribution; its ``key`` uses the exact golden-
baseline format (``lib/coll/{n}B@{nodes}x{ppn}``,
:mod:`repro.bench.regression`) so regression flagging is a dict lookup,
not a re-run.

File format::

    {"schema": 1, "records": [ {record}, ... ]}

``validate_record`` / ``validate_file`` are the structural checks CI
runs on every emitted file.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

#: bump on any incompatible record-shape change
SCHEMA_VERSION = 1

#: required record fields → required python types
_REQUIRED = {
    "schema": int,
    "key": str,
    "library": str,
    "collective": str,
    "nbytes": int,
    "nodes": int,
    "ppn": int,
    "latency_us": (int, float),
    "min_us": (int, float),
    "max_us": (int, float),
    "iterations_us": list,
}

#: optional fields → allowed types (None always allowed)
_OPTIONAL = {
    "stats": dict,
    "resources": dict,
    "attribution": dict,
    "meta": dict,
}


def record_key(library: str, collective: str, nbytes: int,
               nodes: int, ppn: int) -> str:
    """The golden-baseline key format (regression ``_key``)."""
    return f"{library}/{collective}/{nbytes}B@{nodes}x{ppn}"


@dataclass
class BenchRecord:
    """One schema'd benchmark measurement."""

    library: str
    collective: str
    nbytes: int
    nodes: int
    ppn: int
    latency_us: float
    min_us: float
    max_us: float
    iterations_us: List[float]
    stats: Optional[Dict[str, Any]] = None
    #: ResourceMonitor.summary() of the measured window, or None
    resources: Optional[Dict[str, Any]] = None
    #: Attribution.as_dict(), or None
    attribution: Optional[Dict[str, Any]] = None
    #: free-form provenance (bench name, scale, machine preset)
    meta: Dict[str, Any] = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    @property
    def key(self) -> str:
        return record_key(self.library, self.collective, self.nbytes,
                          self.nodes, self.ppn)

    def as_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out["key"] = self.key
        return out


def validate_record(obj: Any, where: str = "record") -> None:
    """Raise :class:`ValueError` naming the first schema violation."""
    if not isinstance(obj, dict):
        raise ValueError(f"{where}: must be an object, got {type(obj).__name__}")
    for name, types in _REQUIRED.items():
        if name not in obj:
            raise ValueError(f"{where}: missing required field {name!r}")
        if isinstance(obj[name], bool) or not isinstance(obj[name], types):
            raise ValueError(
                f"{where}: field {name!r} has type "
                f"{type(obj[name]).__name__}, expected {types}"
            )
    if obj["schema"] != SCHEMA_VERSION:
        raise ValueError(
            f"{where}: schema {obj['schema']} != supported {SCHEMA_VERSION}"
        )
    expected = record_key(obj["library"], obj["collective"], obj["nbytes"],
                          obj["nodes"], obj["ppn"])
    if obj["key"] != expected:
        raise ValueError(f"{where}: key {obj['key']!r} != derived {expected!r}")
    for name, types in _OPTIONAL.items():
        if name in obj and obj[name] is not None \
                and not isinstance(obj[name], types):
            raise ValueError(
                f"{where}: field {name!r} has type "
                f"{type(obj[name]).__name__}, expected {types} or null"
            )
    if not all(isinstance(v, (int, float)) and not isinstance(v, bool)
               for v in obj["iterations_us"]):
        raise ValueError(f"{where}: iterations_us must hold numbers")


def validate_file(obj: Any, where: str = "file") -> int:
    """Validate one records file object; returns the record count."""
    if not isinstance(obj, dict) or not isinstance(obj.get("records"), list):
        raise ValueError(f"{where}: must be {{'schema': .., 'records': [..]}}")
    if obj.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{where}: schema {obj.get('schema')} != supported {SCHEMA_VERSION}"
        )
    for i, rec in enumerate(obj["records"]):
        validate_record(rec, where=f"{where}: records[{i}]")
    return len(obj["records"])


def write_records(path: Union[str, Path],
                  records: Iterable[BenchRecord]) -> Path:
    """Write (and validate) one records file; returns its path."""
    path = Path(path)
    obj = {
        "schema": SCHEMA_VERSION,
        "records": [r.as_dict() for r in records],
    }
    validate_file(obj, where=str(path))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(obj, indent=2, sort_keys=True) + "\n")
    return path


def load_records(root: Union[str, Path]) -> Dict[str, Dict[str, Any]]:
    """Load every ``*.records.json`` under ``root``; key → record dict.

    ``root`` may also be a single records file.  Validates everything
    it reads; later files win on duplicate keys (sorted path order, so
    ingestion is deterministic).
    """
    root = Path(root)
    paths = [root] if root.is_file() else sorted(root.glob("*.records.json"))
    out: Dict[str, Dict[str, Any]] = {}
    for path in paths:
        obj = json.loads(path.read_text())
        validate_file(obj, where=str(path))
        for rec in obj["records"]:
            out[rec["key"]] = rec
    return out
