"""Benchmark harness (subsystem S9)."""

from . import analytic, breakdown, calibrate, plot, regression, sweep, workloads

from .harness import BenchPoint, Sweep, bench_collective, run_sweep
from .report import format_paper_table, format_series, summarize_speedups

__all__ = [
    "analytic",
    "breakdown",
    "regression",
    "calibrate",
    "plot",
    "sweep",
    "workloads",
    "BenchPoint",
    "Sweep",
    "bench_collective",
    "format_paper_table",
    "format_series",
    "run_sweep",
    "summarize_speedups",
]
