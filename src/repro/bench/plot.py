"""ASCII line charts for figure reproduction.

The paper's Figures 1–2 are log-x latency plots over message size with
one series per MPI library.  `ascii_figure` renders a `Sweep` the same
way in plain text, so the benchmark suite can regenerate something the
eye can compare against the paper without a plotting stack.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from .harness import Sweep

#: series markers, assigned to libraries in plot order
MARKERS = "ox+*#@%&"


def _nice_ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """A few round tick values covering [lo, hi] in log space."""
    if lo <= 0:
        lo = min(1e-3, hi / 10 or 1e-3)
    lo_e, hi_e = math.log10(lo), math.log10(hi)
    ticks = []
    for i in range(n):
        ticks.append(10 ** (lo_e + (hi_e - lo_e) * i / (n - 1)))
    return ticks


def ascii_figure(sweep: Sweep, width: int = 72, height: int = 22,
                 log_y: bool = True, title: Optional[str] = None) -> str:
    """Render a sweep as an ASCII chart (log-x sizes, log-y latency)."""
    sizes = sweep.sizes
    libs = sweep.libraries
    if not sizes or not libs:
        raise ValueError("nothing to plot")
    values: Dict[str, List[float]] = {
        lib: [sweep.latency(lib, s) for s in sizes] for lib in libs
    }
    all_vals = [v for series in values.values() for v in series]
    lo, hi = min(all_vals), max(all_vals)
    if log_y:
        lo_t, hi_t = math.log10(lo), math.log10(hi)
    else:
        lo_t, hi_t = lo, hi
    if hi_t == lo_t:
        hi_t = lo_t + 1.0

    def y_of(v: float) -> int:
        t = math.log10(v) if log_y else v
        frac = (t - lo_t) / (hi_t - lo_t)
        return (height - 1) - round(frac * (height - 1))

    def x_of(idx: int) -> int:
        if len(sizes) == 1:
            return width // 2
        return round(idx * (width - 1) / (len(sizes) - 1))

    grid = [[" "] * width for _ in range(height)]
    # Draw series (later series overwrite earlier at collisions; the
    # legend disambiguates).
    for li, lib in enumerate(libs):
        marker = MARKERS[li % len(MARKERS)]
        pts: List[Tuple[int, int]] = [
            (x_of(i), y_of(v)) for i, v in enumerate(values[lib])
        ]
        # connect with simple interpolation
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            steps = max(abs(x1 - x0), 1)
            for s in range(steps + 1):
                x = x0 + round((x1 - x0) * s / steps)
                y = y0 + round((y1 - y0) * s / steps)
                if grid[y][x] == " ":
                    grid[y][x] = "."
        for x, y in pts:
            grid[y][x] = marker

    # Compose with axis labels.
    lines = []
    if title:
        lines.append(title)
    label_w = 11
    for row in range(height):
        frac = 1.0 - row / (height - 1)
        t = lo_t + frac * (hi_t - lo_t)
        v = 10 ** t if log_y else t
        label = f"{v:9.1f} |" if row % 4 == 0 or row == height - 1 else " " * 10 + "|"
        lines.append(label.rjust(label_w) + "".join(grid[row]))
    lines.append(" " * (label_w - 1) + "+" + "-" * width)
    sizes_row = [" "] * width
    for i, s in enumerate(sizes):
        text = f"{s}B" if s < 1024 else f"{s // 1024}K"
        x = min(x_of(i), width - len(text))
        for j, ch in enumerate(text):
            sizes_row[x + j] = ch
    lines.append(" " * label_w + "".join(sizes_row))
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]}={lib}" for i, lib in enumerate(libs)
    )
    lines.append(f"latency (us, log) vs message size — {legend}")
    return "\n".join(lines)
