"""repro — a reproduction of *Accelerating MPI Collectives with
Process-in-Process-based Multi-object Techniques* (HPDC '23).

Quick start::

    from repro.bench import run_sweep
    from repro.machine import broadwell_opa

    sweep = run_sweep("allgather", [64, 256], broadwell_opa(nodes=16, ppn=4))
    print(sweep.speedup("PiP-MColl", 64))

Subsystems (see DESIGN.md): :mod:`repro.sim` (discrete-event kernel),
:mod:`repro.machine` (cluster model), :mod:`repro.pip` (PiP substrate),
:mod:`repro.transport` (POSIX-SHMEM/CMA/XPMEM/PiP/network),
:mod:`repro.runtime` (virtual MPI), :mod:`repro.collectives`
(baselines), :mod:`repro.core` (PiP-MColl), :mod:`repro.mpilibs`
(library models), :mod:`repro.bench`, :mod:`repro.validate`.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
