"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``bench``
    One (library, collective, size) latency point.
``sweep``
    A libraries × sizes grid with the paper-style table (and
    optionally the ASCII figure).  ``--cache``/``--workers`` route the
    grid through the sweep service: warm cells are file reads, cold
    cells batch across forked workers.
``serve``
    Line-oriented sweep service: JSON requests on stdin (or a file),
    BenchRecord responses on stdout, all measurements deduplicated
    through one content-addressed result cache (docs/SERVICE.md).
``figures``
    Regenerate Figure 1 and Figure 2 (optionally at reduced scale).
``info``
    List presets, libraries, transports and their cost structure.
``faults``
    Seeded chaos sweep: latency vs drop rate under reliable delivery,
    printed as a resilience report.
``ft``
    Crash-recovery benchmark under the fault-tolerant runtime:
    time-to-detect, time-to-recover, and post-shrink slowdown for a
    seeded crash plan, per library.
``trace``
    Run one collective under span tracing, export a Perfetto/Chrome
    trace JSON, and print the critical path plus derived metrics
    (``--resources`` adds per-facility counter tracks).
``report``
    Ingest ``benchmarks/results/*.records.json`` and write the
    Fig. 2–7-style comparison report (CSV + JSON + self-contained
    HTML) plus the repo-root ``BENCH_summary.json``.
``shim run``
    Execute an *unmodified* mpi4py script on simulated ranks
    (``mpi4py`` is aliased to :mod:`repro.shim` for the run) against
    any modeled library/machine/engine; ``--trace`` exports the
    Perfetto timeline (docs/SHIM.md).
``telemetry``
    Run a sweep under *host* (wall-clock) tracing and summarize worker
    utilization, the window-stall breakdown by shard, and cache/queue
    efficiency; ``--trace``/``--metrics``/``--json`` export a validated
    Perfetto host trace, a metrics snapshot, and the summary the
    report's host section ingests (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bench import bench_collective, format_paper_table, run_sweep, summarize_speedups
from .bench.plot import ascii_figure
from .machine import available_presets, preset
from .mpilibs import COLLECTIVES, PAPER_LINEUP, available_libraries, make_library
from .transport import available_transports, make_transport


def _parse_sizes(text: str) -> List[int]:
    sizes = []
    for part in text.split(","):
        part = part.strip().lower()
        factor = 1
        if part.endswith("k"):
            factor, part = 1024, part[:-1]
        sizes.append(int(part) * factor)
    if not sizes or any(s < 0 for s in sizes):
        raise argparse.ArgumentTypeError(f"bad size list {text!r}")
    return sizes


def _library_spec(text: str):
    """A --library value: built-in name, registered instance name, or
    ``tuned:<db>`` spec (validated at parse time, like choices=)."""
    from .mpilibs import validate_library_spec

    try:
        return validate_library_spec(text)
    except KeyError as err:
        raise argparse.ArgumentTypeError(str(err.args[0])) from None


def _engine_spec(text: str):
    """An --engine value: name or ``sharded:<shards>[x<workers>]``
    (validated at parse time; downgrade rules apply at world build)."""
    from .sim.spec import ENGINE_NAMES, _parse_engine

    try:
        name, _shards, _workers = _parse_engine(text)
    except ValueError as err:
        raise argparse.ArgumentTypeError(str(err)) from None
    if name not in ENGINE_NAMES:
        raise argparse.ArgumentTypeError(
            f"unknown engine {text!r}; available: {', '.join(ENGINE_NAMES)}"
        )
    return text


def _machine(args) -> "object":
    return preset(args.preset, nodes=args.nodes, ppn=args.ppn)


def _add_machine_args(p: argparse.ArgumentParser, nodes: int, ppn: int) -> None:
    p.add_argument("--preset", default="broadwell_opa", choices=available_presets())
    p.add_argument("--nodes", type=int, default=nodes)
    p.add_argument("--ppn", type=int, default=ppn)


def cmd_bench(args) -> int:
    point = bench_collective(
        args.library, args.collective, args.size, _machine(args),
        warmup=args.warmup, iters=args.iters, engine=args.engine,
    )
    print(f"{point.library} {point.collective} {point.nbytes} B: "
          f"{point.latency_us:.2f} us "
          f"(min {point.min_us:.2f}, max {point.max_us:.2f}, "
          f"{len(point.iterations)} iters)")
    return 0


def cmd_sweep(args) -> int:
    libs = args.libraries.split(",") if args.libraries else list(PAPER_LINEUP)
    cache = None
    if args.cache:
        from .service import ResultCache

        cache = ResultCache(args.cache)
    progress = None
    if args.progress:
        # The same live JSONL stream `serve --events` interleaves:
        # {"event": "progress", "phase": ..., "cell": ...} per line.
        from .obs.host import jsonl_event_writer

        progress = jsonl_event_writer(sys.stderr)
    sweep = run_sweep(args.collective, args.sizes, _machine(args),
                      libraries=libs, warmup=args.warmup, iters=args.iters,
                      engine=args.engine, cache=cache, workers=args.workers,
                      progress=progress)
    print(format_paper_table(sweep, exclude_factor=None))
    print()
    if "PiP-MColl" in libs:
        print(summarize_speedups(sweep))
    if args.plot:
        print()
        print(ascii_figure(sweep, title=f"{args.collective} on {sweep.params_name}"))
    if cache is not None:
        print()
        ratio = cache.stats.hit_ratio
        print(f"cache {args.cache}: {cache.stats.describe()}"
              + (f" ({ratio:.0%} hit ratio)" if ratio is not None else ""))
    return 0


def cmd_serve(args) -> int:
    from .service import ResultCache, serve

    cache = ResultCache(args.cache) if args.cache else None
    err = sys.stderr if args.progress else None
    if args.requests == "-":
        return serve(sys.stdin, sys.stdout, cache, args.workers,
                     err_stream=err, events=args.events)
    with open(args.requests) as fh:
        return serve(fh, sys.stdout, cache, args.workers, err_stream=err,
                     events=args.events)


def cmd_figures(args) -> int:
    for name, collective, sizes in (
        ("Figure 1 (MPI_Scatter)", "scatter", [16, 32, 64, 128, 256, 512, 1024]),
        ("Figure 2 (MPI_Allgather)", "allgather", [16, 32, 64, 128, 256, 512]),
    ):
        sweep = run_sweep(collective, sizes, _machine(args), warmup=1, iters=1)
        print(f"=== {name} — {sweep.params_name} ===")
        print(format_paper_table(sweep, exclude_factor=4.0))
        print()
        print(ascii_figure(sweep, title=name))
        print()
        print(summarize_speedups(sweep))
        print()
    return 0


def cmd_profile(args) -> int:
    from .bench.breakdown import profile_collective

    for name in (args.libraries.split(",") if args.libraries
                 else ["MPICH", "PiP-MColl"]):
        profile = profile_collective(name, args.collective, args.size,
                                     _machine(args))
        print(profile.format())
        print()
    return 0


def cmd_tables(args) -> int:
    from .collectives.tuning import format_selection_tables

    for name in (args.libraries.split(",") if args.libraries
                 else available_libraries()):
        print(format_selection_tables(name, args.ranks))
        print()
    return 0


def _parse_rates(text: str) -> List[float]:
    try:
        rates = [float(part) for part in text.split(",")]
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad drop-rate list {text!r}")
    if not rates or any(not 0.0 <= r <= 1.0 for r in rates):
        raise argparse.ArgumentTypeError("drop rates must be in [0, 1]")
    return rates


def cmd_faults(args) -> int:
    from .faults import chaos_sweep, resilience_report

    libs = args.libraries.split(",") if args.libraries else ["MPICH", "PiP-MColl"]
    points = chaos_sweep(
        args.collective, args.size, _machine(args),
        drop_rates=args.drop_rates, libraries=libs,
        seed=args.seed, iters=args.iters,
    )
    print(resilience_report(points))
    if any(not p.completed for p in points):
        print("\nsome points did not complete — the error names above "
              "(DeliveryFailedError etc.) are the diagnosis, not a crash")
    return 0


def _parse_ranks(text: str) -> List[int]:
    try:
        ranks = [int(p) for p in text.split(",") if p.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad rank list {text!r}")
    if not ranks or any(r < 0 for r in ranks):
        raise argparse.ArgumentTypeError("crash ranks must be >= 0")
    return ranks


def cmd_ft(args) -> int:
    from .ft.bench import HARNESS_COLLECTIVES, recovery_point, recovery_report

    params = _machine(args)
    size = params.nodes * params.ppn
    bad = [r for r in args.crash_ranks if r >= size]
    if bad:
        print(f"crash ranks {bad} outside the {size}-rank world",
              file=sys.stderr)
        return 2
    libs = args.libraries.split(",") if args.libraries else ["MPICH", "PiP-MColl"]
    points = [
        recovery_point(lib, args.collective, args.size, params,
                       crash_ranks=args.crash_ranks, crash_at=args.crash_at,
                       rounds=args.rounds, seed=args.seed)
        for lib in libs
    ]
    print(recovery_report(points))
    notes = {n for p in points for n in p.notes}
    for n in sorted(notes):
        print(f"note: {n}")
    return 0 if all(p.completed for p in points) else 1


def cmd_trace(args) -> int:
    from .api import Session
    from .bench.harness import _buffers, _invoke
    from .obs import validate_chrome_trace

    session = Session(library=args.library, params=_machine(args), trace=True,
                      resources=args.resources)
    lib = session._lib
    size = session.machine.nodes * session.machine.ppn
    algo = lib.wrapped(args.collective, args.size, size)

    def app(comm):
        ctx = comm.ctx
        bufs = _buffers(ctx, args.collective, args.size, size, 0)
        yield from _invoke(algo, ctx, bufs, args.collective, 0)
        return ctx.now

    result = session.run(app)
    result.write_perfetto(args.out)
    events = None
    if args.validate:
        events = validate_chrome_trace(result.to_perfetto())
    print(f"{args.library} {args.collective} {args.size} B on "
          f"{session.machine.nodes}x{session.machine.ppn} ranks: "
          f"{result.elapsed * 1e6:.2f} us simulated")
    suffix = f" ({events} events, schema OK)" if events is not None else ""
    print(f"wrote {args.out}{suffix} — load it at ui.perfetto.dev")
    print()
    print(result.critical_path(args.collective).describe())
    print()
    print(result.metrics.format())
    if result.resources is not None:
        inj = result.resources.injection_summary()
        occ = result.resources.occupancy_by_kind()
        print()
        print("resource occupancy: " + "  ".join(
            f"{kind}={val:.4f}" for kind, val in sorted(occ.items())))
        print(f"injection engines: {inj['active_ranks']} active "
              f"({inj['engine_utilization']:.0%}), aggregate occupancy "
              f"{inj['aggregate_occupancy']:.4f}, "
              f"{inj['total_msgs']} msgs / {inj['total_bytes']} B")
    return 0


def cmd_shim_run(args) -> int:
    """Run an unmodified mpi4py script on the simulated runtime."""
    from .obs import validate_chrome_trace
    from .shim import run_script

    kwargs = {}
    if args.preset:
        geo = {}
        if args.nodes is not None:
            geo["nodes"] = args.nodes
        if args.ppn is not None:
            geo["ppn"] = args.ppn
        kwargs["params"] = preset(args.preset, **geo)
    else:
        kwargs.update(nranks=args.nranks, nodes=args.nodes, ppn=args.ppn)
    script_args = args.script_args
    if script_args and script_args[0] == "--":
        script_args = script_args[1:]
    result = run_script(args.script, argv=tuple(script_args),
                        library=args.library, engine=args.engine,
                        trace=bool(args.trace) or not args.no_trace,
                        **kwargs)
    machine = result.world.params
    print(f"{args.script} on {machine.nodes}x{machine.ppn} simulated ranks "
          f"({result.library}, engine {result.engine.name}): "
          f"{result.elapsed * 1e6:.2f} us simulated")
    for note in result.shim_notes:
        print(f"note: {note}")
    for note in result.engine.downgrades:
        print(f"engine: {note}")
    if args.trace:
        result.write_perfetto(args.trace)
        suffix = ""
        if args.validate:
            events = validate_chrome_trace(result.to_perfetto())
            suffix = f" ({events} events, schema OK)"
        print(f"wrote {args.trace}{suffix} — load it at ui.perfetto.dev")
    if result.metrics is not None and args.metrics:
        print()
        print(result.metrics.format())
    return 0


def cmd_report(args) -> int:
    import json
    from pathlib import Path

    from .report import build_report, render_html, write_summary

    golden = args.golden if args.golden and Path(args.golden).exists() else None
    report = build_report(args.results, golden=golden,
                          tolerance=args.tolerance)
    if not report.records:
        print(f"no *.records.json under {args.results} — run the "
              "benchmarks first (PYTHONPATH=src python -m pytest benchmarks)")
        return 1
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    (out / "report.json").write_text(
        json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n")
    for name, text in report.to_csv().items():
        (out / name).write_text(text)
    # A host-telemetry summary next to the records (written by
    # `repro telemetry --json`) becomes the wall-clock section.
    host_summary = None
    host_path = Path(args.results) / "host_telemetry.json"
    if host_path.is_file():
        try:
            host_summary = json.loads(host_path.read_text())
        except ValueError:
            host_summary = None
    (out / "report.html").write_text(render_html(report, host=host_summary))
    if args.summary:
        write_summary(args.summary, report)
    print(report.format())
    print()
    wrote = sorted(p.name for p in out.iterdir())
    print(f"wrote {out}/: {', '.join(wrote)}"
          + (f" and {args.summary}" if args.summary else ""))
    if args.strict and report.drifted:
        print(f"FAIL: {len(report.drifted)} benchmark(s) drifted beyond "
              f"±{report.tolerance:.0%} of golden")
        return 1
    return 0


def cmd_tune_search(args) -> int:
    from .tuner import format_db, make_cells, search

    cells = make_cells(args.collective, args.sizes, args.nodes, args.ppn,
                       preset=args.preset)
    eager = ([None] + args.eager_limits) if args.eager_limits else None
    db = search(
        cells,
        base_library=args.base,
        strategy=args.strategy,
        seed=args.seed,
        workers=args.workers,
        timeout_s=args.timeout,
        checkpoint=args.checkpoint,
        eager_choices=eager,
        cache=args.cache,
    )
    out = args.out or (
        f"tune_{args.collective}_{args.nodes}x{args.ppn}.tunedb.json")
    db.save(out)
    print(format_db(db))
    print(f"\nwrote {out}")
    return 0


def cmd_tune_show(args) -> int:
    from .tuner import format_db, load_db

    print(format_db(load_db(args.db)))
    return 0


def cmd_tune_diff(args) -> int:
    from .tuner import diff, format_diff, load_db

    entries = diff(load_db(args.old), load_db(args.new))
    print(format_diff(entries))
    return 1 if entries and args.strict else 0


def cmd_tune_merge(args) -> int:
    from .tuner import load_db, merge

    merged = load_db(args.dbs[0])
    for path in args.dbs[1:]:
        merged = merge(merged, load_db(path))
    merged.save(args.out)
    print(f"merged {len(args.dbs)} databases ({len(merged.cells)} cells) "
          f"into {args.out}")
    return 0


def cmd_tune_compile(args) -> int:
    from .collectives.tuning import compare_tables, format_compare_tables
    from .tuner import compile_db

    lib = compile_db(args.db)
    print(f"compiled {args.db} → {lib.profile.name} "
          f"(base {lib.base.profile.name}, {len(lib.coverage())} cells)")
    for key in lib.coverage():
        print(f"  {key}")
    if args.compare:
        world = args.ranks or max(
            r.nodes * r.ppn for r in lib.db.cells.values())
        print(f"\nflipped cells vs {lib.base.profile.name} "
              f"at {world} ranks:")
        print(format_compare_tables(
            compare_tables(lib.base, lib, world)))
    return 0


def cmd_telemetry(args) -> int:
    """Run a sweep under host tracing and summarize the wall clock."""
    import json
    from pathlib import Path

    from .obs import host
    from .obs.host import HostReport, jsonl_event_writer
    from .obs.perfetto import validate_chrome_trace, write_trace

    libs = args.libraries.split(",") if args.libraries else list(PAPER_LINEUP)
    cache = None
    if args.cache:
        from .service import ResultCache

        cache = ResultCache(args.cache)
    progress = jsonl_event_writer(sys.stderr) if args.progress else None
    with host.tracing() as tracer:
        run_sweep(args.collective, args.sizes, _machine(args),
                  libraries=libs, warmup=args.warmup, iters=args.iters,
                  engine=args.engine, cache=cache, workers=args.workers,
                  progress=progress)
    report = HostReport(tracer)
    print(report.format())
    wrote = []
    if args.trace:
        obj = report.to_perfetto()
        validate_chrome_trace(obj)
        write_trace(obj, args.trace)
        wrote.append(f"{args.trace} (validated Perfetto host trace)")
    if args.metrics:
        Path(args.metrics).write_text(json.dumps(
            report.metrics().snapshot(), indent=2, sort_keys=True) + "\n")
        wrote.append(f"{args.metrics} (metrics snapshot)")
    if args.json:
        Path(args.json).write_text(json.dumps(
            report.as_dict(), indent=2, sort_keys=True) + "\n")
        wrote.append(f"{args.json} (host telemetry summary)")
    for line in wrote:
        print(f"wrote {line}")
    return 0


def cmd_info(args) -> int:
    print("machine presets:")
    for name in available_presets():
        print(f"  {name}: {preset(name).describe()}")
    print("\nMPI library models:")
    for name in available_libraries():
        profile = make_library(name).profile
        print(f"  {profile.name:10s} intra={profile.intra:13s} "
              f"call={profile.call_overhead * 1e9:5.0f} ns  {profile.description}")
    print("\ntransports:")
    for name in available_transports():
        print(f"  {name:13s} {make_transport(name).describe()}")
    print(f"\ncollectives: {', '.join(COLLECTIVES)}")
    from .sim.spec import ENGINE_NAMES, resolve_engine

    print("\nengines (see docs/ENGINE.md for downgrade rules):")
    for name in ENGINE_NAMES:
        spec = resolve_engine(name, nodes=16)
        print(f"  {name:10s} {spec.describe()}")
    if getattr(args, "cache", None):
        from .service import CACHE_LAYOUT_VERSION, ResultCache

        cache = ResultCache(args.cache)
        entries = list(cache.keys())
        nbytes = sum(cache.path_for(k).stat().st_size for k in entries)
        print(f"\nresult cache {args.cache}:")
        print(f"  layout   v{CACHE_LAYOUT_VERSION}")
        print(f"  entries  {len(entries)}")
        print(f"  size     {nbytes / 1024:.1f} KiB")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PiP-MColl reproduction (HPDC '23) — simulated MPI collectives",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("bench", help="one latency point")
    p.add_argument("--library", default="PiP-MColl", type=_library_spec,
                   help=f"one of {available_libraries()} or 'tuned:<db>'")
    p.add_argument("--collective", default="allgather", choices=COLLECTIVES)
    p.add_argument("--size", type=int, default=64)
    p.add_argument("--warmup", type=int, default=1)
    p.add_argument("--iters", type=int, default=3)
    p.add_argument("--engine", type=_engine_spec, default=None,
                   help="simulation engine: reference, calendar (default), "
                        "sharded[:<shards>[x<workers>]], analytic")
    _add_machine_args(p, nodes=16, ppn=6)
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser("sweep", help="libraries × sizes grid")
    p.add_argument("--collective", default="allgather", choices=COLLECTIVES)
    p.add_argument("--sizes", type=_parse_sizes, default=[16, 64, 256])
    p.add_argument("--libraries", default="",
                   help="comma-separated (default: the paper lineup)")
    p.add_argument("--warmup", type=int, default=1)
    p.add_argument("--iters", type=int, default=2)
    p.add_argument("--plot", action="store_true", help="ASCII figure too")
    p.add_argument("--engine", type=_engine_spec, default=None,
                   help="simulation engine: reference, calendar (default), "
                        "sharded[:<shards>[x<workers>]], analytic")
    p.add_argument("--cache", default=None,
                   help="content-addressed result cache directory "
                        "(warm cells are file reads — see docs/SERVICE.md)")
    p.add_argument("--workers", type=int, default=1,
                   help="forked worker processes for cold cells")
    p.add_argument("--progress", action="store_true",
                   help="stream per-cell progress events to stderr")
    _add_machine_args(p, nodes=16, ppn=6)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "serve", help="JSONL sweep service over a shared result cache")
    p.add_argument("--cache", default=None,
                   help="result cache directory (omit to run uncached)")
    p.add_argument("--workers", type=int, default=1,
                   help="forked worker processes per request")
    p.add_argument("--requests", default="-",
                   help="request file, one JSON object per line ('-': stdin)")
    p.add_argument("--progress", action="store_true",
                   help="stream per-cell progress events to stderr")
    p.add_argument("--events", action="store_true",
                   help="interleave JSONL progress events into stdout "
                        "ahead of each response line (streaming clients)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "telemetry",
        help="host wall-clock telemetry for a sweep (docs/OBSERVABILITY.md)")
    p.add_argument("--collective", default="allgather", choices=COLLECTIVES)
    p.add_argument("--sizes", type=_parse_sizes, default=[16, 64, 256])
    p.add_argument("--libraries", default="",
                   help="comma-separated (default: the paper lineup)")
    p.add_argument("--warmup", type=int, default=1)
    p.add_argument("--iters", type=int, default=2)
    p.add_argument("--engine", type=_engine_spec, default="sharded:4",
                   help="simulation engine (default sharded:4 — shard "
                        "tracks are the point of the exercise)")
    p.add_argument("--cache", default=None,
                   help="route the sweep through a result cache directory")
    p.add_argument("--workers", type=int, default=1,
                   help="forked worker processes for cold cells")
    p.add_argument("--trace", default=None,
                   help="write a validated Perfetto host trace JSON here")
    p.add_argument("--metrics", default=None,
                   help="write a metrics snapshot JSON here")
    p.add_argument("--json", default=None,
                   help="write the telemetry summary JSON here (the "
                        "report's host section ingests this)")
    p.add_argument("--progress", action="store_true",
                   help="stream JSONL progress events to stderr")
    _add_machine_args(p, nodes=16, ppn=6)
    p.set_defaults(fn=cmd_telemetry)

    p = sub.add_parser("figures", help="regenerate Figures 1 and 2")
    _add_machine_args(p, nodes=128, ppn=18)
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser("profile", help="where a collective's time goes")
    p.add_argument("--collective", default="allgather", choices=COLLECTIVES)
    p.add_argument("--size", type=int, default=64)
    p.add_argument("--libraries", default="",
                   help="comma-separated (default: MPICH,PiP-MColl)")
    _add_machine_args(p, nodes=16, ppn=6)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("tables", help="algorithm selection tables")
    p.add_argument("--ranks", type=int, default=2304)
    p.add_argument("--libraries", default="",
                   help="comma-separated (default: all)")
    p.set_defaults(fn=cmd_tables)

    p = sub.add_parser("faults", help="seeded chaos sweep (resilience report)")
    p.add_argument("--collective", default="allgather", choices=COLLECTIVES)
    p.add_argument("--size", type=int, default=64)
    p.add_argument("--drop-rates", type=_parse_rates,
                   default=[0.0, 0.05, 0.1, 0.2],
                   help="comma-separated drop probabilities in [0, 1]")
    p.add_argument("--libraries", default="",
                   help="comma-separated (default: MPICH,PiP-MColl)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--iters", type=int, default=1)
    _add_machine_args(p, nodes=4, ppn=4)
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser(
        "ft", help="crash-recovery benchmark (detect/recover/slowdown)")
    from .ft.bench import HARNESS_COLLECTIVES as _FT_COLLECTIVES

    p.add_argument("--collective", default="allreduce",
                   choices=_FT_COLLECTIVES)
    p.add_argument("--size", type=int, default=64)
    p.add_argument("--crash-ranks", type=_parse_ranks, default=[1],
                   help="comma-separated world ranks to crash")
    p.add_argument("--crash-at", type=float, default=2e-6,
                   help="crash instant on the simulated clock (seconds)")
    p.add_argument("--rounds", type=int, default=6)
    p.add_argument("--libraries", default="",
                   help="comma-separated (default: MPICH,PiP-MColl)")
    p.add_argument("--seed", type=int, default=0)
    _add_machine_args(p, nodes=4, ppn=4)
    p.set_defaults(fn=cmd_ft)

    p = sub.add_parser("trace", help="span-trace one collective (Perfetto JSON)")
    p.add_argument("--library", default="PiP-MColl", type=_library_spec,
                   help=f"one of {available_libraries()} or 'tuned:<db>'")
    p.add_argument("--collective", default="allgather", choices=COLLECTIVES)
    p.add_argument("--size", type=int, default=64)
    p.add_argument("--out", default="trace.json")
    p.add_argument("--validate", action="store_true",
                   help="check the export against the Chrome trace-event schema")
    p.add_argument("--resources", action="store_true",
                   help="record per-resource busy/queue timelines and "
                        "export them as Perfetto counter tracks")
    _add_machine_args(p, nodes=4, ppn=4)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "shim", help="run unmodified mpi4py programs (docs/SHIM.md)")
    shim_sub = p.add_subparsers(dest="shim_command", required=True)

    s = shim_sub.add_parser(
        "run", help="execute a real mpi4py script on simulated ranks")
    s.add_argument("script", help="path to an unmodified mpi4py script")
    s.add_argument("script_args", nargs=argparse.REMAINDER,
                   help="arguments passed to the script's sys.argv "
                        "(everything after the script path; put repro "
                        "options before it)")
    s.add_argument("--nranks", "-n", type=int, default=None,
                   help="world size (mpiexec -n); geometry picked to "
                        "prefer multi-node shapes")
    s.add_argument("--nodes", type=int, default=None)
    s.add_argument("--ppn", type=int, default=None)
    s.add_argument("--preset", default=None, choices=available_presets(),
                   help="machine preset (default broadwell_opa timings)")
    s.add_argument("--library", default="PiP-MColl", type=_library_spec,
                   help=f"one of {available_libraries()} or 'tuned:<db>'")
    s.add_argument("--engine", type=_engine_spec, default=None,
                   help="simulation engine: reference, calendar (default), "
                        "sharded[:<shards>] (shim forces workers=1), "
                        "analytic")
    s.add_argument("--trace", default=None,
                   help="write the run's Perfetto trace JSON here")
    s.add_argument("--validate", action="store_true",
                   help="check the trace export against the Chrome "
                        "trace-event schema")
    s.add_argument("--no-trace", action="store_true",
                   help="disable span recording entirely (faster; "
                        "incompatible with --trace)")
    s.add_argument("--metrics", action="store_true",
                   help="print derived span metrics after the run")
    s.set_defaults(fn=cmd_shim_run)

    p = sub.add_parser("report", help="benchmark records → paper-figure report")
    p.add_argument("--results", default="benchmarks/results",
                   help="directory of *.records.json (or one file)")
    p.add_argument("--out", default="benchmarks/results/report",
                   help="output directory for CSV/JSON/HTML")
    p.add_argument("--summary", default="BENCH_summary.json",
                   help="trajectory summary path ('' to skip)")
    p.add_argument("--golden", default="benchmarks/golden.json",
                   help="golden latency baseline for drift flags")
    p.add_argument("--tolerance", type=float, default=0.10,
                   help="drift tolerance vs golden (fraction)")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero when any benchmark drifted")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("tune", help="empirical autotuner (see docs/TUNING.md)")
    tune_sub = p.add_subparsers(dest="tune_command", required=True)

    t = tune_sub.add_parser("search", help="search the schedule space → .tunedb.json")
    t.add_argument("--collective", default="allgather", choices=COLLECTIVES)
    t.add_argument("--sizes", type=_parse_sizes, default=[16, 64, 256, 1024, 4096])
    t.add_argument("--base", default="PiP-MColl",
                   help="base library the tuned tables fall back to")
    t.add_argument("--strategy", default="exhaustive",
                   choices=("exhaustive", "halving", "hill"))
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--workers", type=int, default=1,
                   help="worker processes for candidate evaluation")
    t.add_argument("--timeout", type=float, default=None,
                   help="per-candidate wall-clock budget (seconds)")
    t.add_argument("--eager-limits", type=_parse_sizes, default=None,
                   help="eager→rendezvous overrides to search (bytes)")
    t.add_argument("--checkpoint", default=None,
                   help="JSON eval cache; re-running resumes from it")
    t.add_argument("--cache", default=None,
                   help="sweep-service result cache directory, shared "
                        "across searches and sweeps (docs/SERVICE.md)")
    t.add_argument("--out", default=None,
                   help="output path (default tune_<coll>_<NxP>.tunedb.json)")
    _add_machine_args(t, nodes=16, ppn=18)
    t.set_defaults(fn=cmd_tune_search)

    t = tune_sub.add_parser("show", help="print a tuning DB as a table")
    t.add_argument("db")
    t.set_defaults(fn=cmd_tune_show)

    t = tune_sub.add_parser("diff", help="cell-by-cell DB comparison")
    t.add_argument("old")
    t.add_argument("new")
    t.add_argument("--strict", action="store_true",
                   help="exit nonzero when the DBs differ")
    t.set_defaults(fn=cmd_tune_diff)

    t = tune_sub.add_parser("merge", help="union several DBs (best wins)")
    t.add_argument("dbs", nargs="+")
    t.add_argument("--out", required=True)
    t.set_defaults(fn=cmd_tune_merge)

    t = tune_sub.add_parser("compile",
                            help="DB → TunedLibrary (verifies + lists coverage)")
    t.add_argument("db")
    t.add_argument("--compare", action="store_true",
                   help="also print flipped cells vs the base library")
    t.add_argument("--ranks", type=int, default=None,
                   help="world size for --compare (default: largest tuned)")
    t.set_defaults(fn=cmd_tune_compile)

    p = sub.add_parser("info", help="presets, libraries, transports")
    p.add_argument("--cache", default=None,
                   help="also describe this result cache directory")
    p.set_defaults(fn=cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
