"""The simulation engine: a deterministic event loop over virtual time.

Time is a ``float`` in **seconds** throughout the project (machine-model
parameters are expressed in seconds too; reports convert to µs).  Events
scheduled for the same timestamp are processed in schedule order, which
makes every simulation fully deterministic — a property the test suite
relies on heavily.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple

from .errors import StopSimulation
from .events import AllOf, AnyOf, Event, Timeout
from .process import ProcGen, Process

_QueueItem = Tuple[float, int, Event]


class Simulator:
    """Owns the event queue and the virtual clock.

    Typical use::

        sim = Simulator()

        def hello(sim):
            yield sim.timeout(1.5)
            return "done"

        proc = sim.process(hello(sim))
        sim.run()
        assert sim.now == 1.5 and proc.value == "done"
    """

    def __init__(self, tracer=None) -> None:
        self.now: float = 0.0
        self._queue: List[_QueueItem] = []
        self._seq: int = 0
        self._event_count: int = 0
        #: optional :class:`~repro.sim.trace.Tracer`
        self.tracer = tracer

    # -- factories -----------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcGen, name: Optional[str] = None) -> Process:
        """Start a process driving ``generator``; returns its join event."""
        return Process(self, generator, name)

    def all_of(self, events) -> AllOf:
        """Event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event firing when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------
    def _push(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue a triggered event for processing ``delay`` from now."""
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, event))

    def peek(self) -> float:
        """Timestamp of the next event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        when, _, event = heapq.heappop(self._queue)
        if when < self.now:  # pragma: no cover - guarded by _push
            raise StopSimulation(f"time went backwards: {when} < {self.now}")
        self.now = when
        callbacks, event.callbacks = event.callbacks, None
        self._event_count += 1
        if self.tracer is not None:
            self.tracer.record(self.now, f"event:{type(event).__name__}")
        for callback in callbacks:
            callback(event)
        if not event.ok and not callbacks:
            # A failure nobody was waiting on: surface it rather than
            # silently dropping a crashed process.
            raise event.value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes ``until``.

        When ``until`` is given the clock is left exactly at ``until``
        (if the simulation got that far).
        """
        if until is None:
            while self._queue:
                self.step()
            return
        if until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        while self._queue and self.peek() <= until:
            self.step()
        self.now = until

    @property
    def event_count(self) -> int:
        """Number of events processed so far (a determinism/perf probe)."""
        return self._event_count
