"""The simulation engine: a deterministic event loop over virtual time.

Time is a ``float`` in **seconds** throughout the project (machine-model
parameters are expressed in seconds too; reports convert to µs).  Events
scheduled for the same timestamp are processed in schedule order, which
makes every simulation fully deterministic — a property the test suite
relies on heavily.

Two scheduler backends share that contract:

* ``queue="calendar"`` (default) — a classic calendar queue (Brown
  1988): a ring of day-buckets of fixed width plus an overflow heap for
  the far future.  Insert and pop are O(1) for the common case of
  near-future events, which is what a paper-scale run (2304 ranks,
  hundreds of thousands of sub-microsecond message events) produces.
* ``queue="heap"`` — the original binary heap, kept as a reference
  implementation and a fallback for pathological time distributions.

Both order strictly by ``(time, sequence)`` so a simulation is
bit-identical under either backend.

Besides full :class:`~repro.sim.events.Event` objects the queue accepts
two lightweight item kinds used by the macro-event fast path:

* a bare callable — invoked with no arguments when its time arrives;
* a ``(fn, arg)`` tuple — ``fn(arg)`` when its time arrives.

Neither allocates callback lists or participates in the event protocol,
which is what makes batched message completion cheap.  They are
scheduled via :meth:`Simulator.call_at` / :meth:`Simulator.call_in`.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, List, Optional, Tuple

from .errors import StopSimulation
from .events import AllOf, AnyOf, Event, Timeout
from .process import ProcGen, Process

_QueueItem = Tuple[float, int, Any]


class HeapQueue:
    """The reference scheduler: a binary heap of (time, seq, item)."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[_QueueItem] = []

    def push(self, when: float, seq: int, item: Any) -> None:
        heapq.heappush(self._heap, (when, seq, item))

    def pop(self) -> Tuple[float, Any]:
        when, _seq, item = heapq.heappop(self._heap)
        return when, item

    def peek_time(self) -> float:
        return self._heap[0][0] if self._heap else float("inf")

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class CalendarQueue:
    """Calendar queue: O(1) insert/pop for near-future events.

    The ring covers ``nbuckets`` consecutive *days* of ``width`` seconds
    each, starting at the day of the most recent pop.  An entry whose
    day lies inside the ring goes into its day's bucket (kept sorted,
    newest-first, so the next entry pops from the list tail in O(1));
    entries beyond the ring horizon wait in an overflow heap and are
    migrated when the cursor approaches their day.

    Buckets store ``(-when, -seq, item)`` so :func:`bisect.insort`'s
    ascending order puts the *earliest* entry at the tail — push is one
    C-implemented insort into a short list, pop is ``list.pop()``.

    The queue resizes (doubling the ring, re-estimating the width from
    the live entries' span) when buckets get crowded, preserving
    amortised O(1) behaviour without tuning by the caller.
    """

    __slots__ = ("_buckets", "_nbuckets", "_mask", "_width", "_inv",
                 "_day", "_size", "_far", "_resize_at")

    def __init__(self, width: float = 2.0e-7, nbuckets: int = 64) -> None:
        if width <= 0.0:
            raise ValueError(f"bucket width must be > 0, got {width}")
        if nbuckets < 2 or nbuckets & (nbuckets - 1):
            raise ValueError(f"nbuckets must be a power of two >= 2, got {nbuckets}")
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._width = width
        self._inv = 1.0 / width
        self._buckets: List[List[Tuple[float, int, Any]]] = [
            [] for _ in range(nbuckets)
        ]
        self._day = 0
        self._size = 0
        self._far: List[_QueueItem] = []
        self._resize_at = nbuckets * 4

    def push(self, when: float, seq: int, item: Any) -> None:
        day = int(when * self._inv)
        if day < self._day:
            # The cursor can run ahead of a new entry's nominal day
            # (after a resize re-anchors the ring, or through float
            # rounding at a day boundary).  Clamping into the cursor's
            # bucket is exact: buckets are kept sorted, so the entry
            # still pops in strict (time, seq) order.
            day = self._day
        elif day - self._day >= self._nbuckets:
            heapq.heappush(self._far, (when, seq, item))
            return
        insort(self._buckets[day & self._mask], (-when, -seq, item))
        self._size += 1
        if self._size > self._resize_at:
            self._grow()

    def pop(self) -> Tuple[float, Any]:
        if self._size:
            buckets, mask, day = self._buckets, self._mask, self._day
            bucket = buckets[day & mask]
            if bucket:
                self._size -= 1
                neg_when, _neg_seq, item = bucket.pop()
                return -neg_when, item
            # Advance the cursor to the next populated day, migrating
            # overflow entries whose day enters the ring as we go.
            far, horizon = self._far, self._nbuckets
            while True:
                day += 1
                while far and int(far[0][0] * self._inv) - day < horizon:
                    when, seq, item = heapq.heappop(far)
                    insort(buckets[int(when * self._inv) & mask],
                           (-when, -seq, item))
                    self._size += 1
                bucket = buckets[day & mask]
                if bucket:
                    self._day = day
                    self._size -= 1
                    neg_when, _neg_seq, item = bucket.pop()
                    return -neg_when, item
        if self._far:
            # Ring empty: jump straight to the overflow's first day.
            when, seq, item = heapq.heappop(self._far)
            self._day = int(when * self._inv)
            self._migrate()
            return when, item
        raise IndexError("pop from an empty CalendarQueue")

    def _migrate(self) -> None:
        """Pull overflow entries that now fall inside the ring window."""
        far, horizon, day = self._far, self._nbuckets, self._day
        while far and int(far[0][0] * self._inv) - day < horizon:
            when, seq, item = heapq.heappop(far)
            insort(self._buckets[int(when * self._inv) & self._mask],
                   (-when, -seq, item))
            self._size += 1

    def _grow(self) -> None:
        """Double the ring; re-estimate the width from live entries."""
        entries = [e for bucket in self._buckets for e in bucket]
        lo = -max(e[0] for e in entries)
        hi = -min(e[0] for e in entries)
        nbuckets = self._nbuckets * 2
        # Aim for a handful of entries per day across the live span;
        # keep the old width if the entries are all simultaneous.
        span = hi - lo
        if span > 0.0:
            self._width = max(span / max(len(entries) // 4, 1), 1e-12)
            self._inv = 1.0 / self._width
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._resize_at = nbuckets * 4
        self._buckets = [[] for _ in range(nbuckets)]
        self._day = int(lo * self._inv)
        for neg_when, neg_seq, item in entries:
            day = int(-neg_when * self._inv)
            if day - self._day >= nbuckets:
                heapq.heappush(self._far, (-neg_when, -neg_seq, item))
            else:
                insort(self._buckets[day & self._mask],
                       (neg_when, neg_seq, item))
        self._size = sum(len(b) for b in self._buckets)
        self._migrate()

    def peek_time(self) -> float:
        if self._size:
            bucket = self._buckets[self._day & self._mask]
            if bucket:
                return -bucket[-1][0]
            best = min(-b[-1][0] for b in self._buckets if b)
            if self._far and self._far[0][0] < best:
                return self._far[0][0]
            return best
        if self._far:
            return self._far[0][0]
        return float("inf")

    def __len__(self) -> int:
        return self._size + len(self._far)

    def __bool__(self) -> bool:
        return bool(self._size or self._far)


class Simulator:
    """Owns the event queue and the virtual clock.

    Typical use::

        sim = Simulator()

        def hello(sim):
            yield sim.timeout(1.5)
            return "done"

        proc = sim.process(hello(sim))
        sim.run()
        assert sim.now == 1.5 and proc.value == "done"

    ``queue`` selects the scheduler backend (``"calendar"`` — the
    default — or ``"heap"``); simulations are bit-identical under both.
    """

    #: True on :class:`~repro.sim.shard.ShardedSimulator` — the flag
    #: transports branch on to route arrivals into destination shards
    is_sharded = False

    def __init__(self, tracer=None, queue: str = "calendar") -> None:
        self.now: float = 0.0
        if queue == "calendar":
            self._queue = CalendarQueue()
        elif queue == "heap":
            self._queue = HeapQueue()
        else:
            raise ValueError(f"unknown queue backend {queue!r}")
        self._seq: int = 0
        self._event_count: int = 0
        #: optional :class:`~repro.sim.trace.Tracer`
        self.tracer = tracer

    # -- factories -----------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def event_at(self, when: float, value: Any = None) -> Event:
        """An event firing at the absolute time ``when`` (``>= now``).

        The absolute-time sibling of :meth:`timeout`: a caller that
        already knows a completion instant exactly (a FIFO pipe
        reservation, say) schedules it without the ``now + (when -
        now)`` delta round-trip, which is not an identity in floating
        point and would let the two engine paths drift by a ULP.
        """
        if when < self.now:
            raise ValueError(f"event_at({when}) is in the past (now={self.now})")
        ev = Event(self)
        ev._ok = True
        ev._value = value
        self._seq += 1
        self._queue.push(when, self._seq, ev)
        return ev

    def process(self, generator: ProcGen, name: Optional[str] = None) -> Process:
        """Start a process driving ``generator``; returns its join event."""
        return Process(self, generator, name)

    def all_of(self, events) -> AllOf:
        """Event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event firing when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------
    def _push(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue a triggered event for processing ``delay`` from now."""
        self._seq += 1
        self._queue.push(self.now + delay, self._seq, event)

    def call_at(self, when: float, fn) -> None:
        """Run ``fn`` (a callable or a ``(fn, arg)`` tuple) at ``when``.

        The macro-event scheduling primitive: no :class:`Event` is
        allocated and no callback list exists — the queue item *is* the
        action.  ``when`` must not lie in the past.
        """
        if when < self.now:
            raise ValueError(f"call_at({when}) is in the past (now={self.now})")
        self._seq += 1
        self._queue.push(when, self._seq, fn)

    def call_in(self, delay: float, fn) -> None:
        """Run ``fn`` ``delay`` seconds from now (see :meth:`call_at`)."""
        if delay < 0.0:
            raise ValueError(f"negative delay {delay!r}")
        self._seq += 1
        self._queue.push(self.now + delay, self._seq, fn)

    def call_at_node(self, node_id: int, when: float, fn) -> None:
        """:meth:`call_at`, annotated with the node the action affects.

        On the global engine the annotation is ignored; the sharded
        engine overrides this to route the item into ``node_id``'s
        shard (message arrivals must execute under the destination's
        queue).  Transports call this unconditionally so one code path
        serves both engines.
        """
        if when < self.now:
            raise ValueError(f"call_at({when}) is in the past (now={self.now})")
        self._seq += 1
        self._queue.push(when, self._seq, fn)

    def peek(self) -> float:
        """Timestamp of the next event, or ``inf`` if the queue is empty."""
        return self._queue.peek_time()

    def _dispatch(self, item: Any) -> None:
        """Process one popped queue item (the clock is already set)."""
        self._event_count += 1
        cls = item.__class__
        if cls is tuple:
            fn, arg = item
            if self.tracer is not None:
                self.tracer.record(self.now, "event:callback")
            fn(arg)
            return
        if isinstance(item, Event):
            callbacks, item.callbacks = item.callbacks, None
            if self.tracer is not None:
                self.tracer.record(self.now, f"event:{cls.__name__}")
            for callback in callbacks:
                callback(item)
            if not item.ok and not callbacks:
                # A failure nobody was waiting on: surface it rather
                # than silently dropping a crashed process.
                raise item.value
            return
        if self.tracer is not None:
            self.tracer.record(self.now, "event:callback")
        item()

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        when, item = self._queue.pop()
        if when < self.now:  # pragma: no cover - guarded by _push
            raise StopSimulation(f"time went backwards: {when} < {self.now}")
        self.now = when
        self._dispatch(item)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes ``until``.

        When ``until`` is given the clock is left exactly at ``until``
        (if the simulation got that far).
        """
        queue = self._queue
        if until is None:
            # The hot loop: inlined pop + dispatch of the three item
            # kinds, cheapest (and most common at scale) first.
            pop = queue.pop
            tracer = self.tracer
            while queue:
                when, item = pop()
                self.now = when
                if tracer is not None:
                    self._dispatch(item)
                    continue
                self._event_count += 1
                cls = item.__class__
                if cls is tuple:
                    fn, arg = item
                    fn(arg)
                elif isinstance(item, Event):
                    callbacks, item.callbacks = item.callbacks, None
                    for callback in callbacks:
                        callback(item)
                    if not item.ok and not callbacks:
                        raise item.value
                else:
                    item()
            return
        if until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        while queue and queue.peek_time() <= until:
            self.step()
        self.now = until

    @property
    def event_count(self) -> int:
        """Number of events processed so far (a determinism/perf probe)."""
        return self._event_count
