"""Execution tracing for the simulation kernel.

A :class:`Tracer` attached to a :class:`~repro.sim.engine.Simulator`
records every processed event (timestamp + event class) and keeps
per-class counters.  Cheap enough to leave on in tests; off by default
in benchmarks.

The runtime adds higher-level records through the same object (message
deliveries, collective phases), so one trace tells the whole story of
a simulation — see :attr:`Tracer.records`.

This is the *flat* record stream at kernel granularity.  For
hierarchical, per-rank span timelines (nested collective → round →
message spans, critical-path extraction, a full Perfetto exporter and
a metrics registry) use :mod:`repro.obs` — the tracer stays as the
low-level kernel-event log underneath it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple


@dataclass
class TraceRecord:
    """One traced occurrence."""

    time: float
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Tracer:
    """Collects kernel events and user-level records.

    Parameters
    ----------
    keep_records:
        When False only counters are kept (bounded memory for long
        runs); when True every record is retained for inspection.
    """

    keep_records: bool = True
    counters: Counter = field(default_factory=Counter)
    records: List[TraceRecord] = field(default_factory=list)

    def record(self, time: float, kind: str, **detail: Any) -> None:
        """Add one record."""
        self.counters[kind] += 1
        if self.keep_records:
            self.records.append(TraceRecord(time, kind, detail))

    def clear(self) -> None:
        """Drop every record and counter (e.g. after a warmup phase)."""
        self.records.clear()
        self.counters.clear()

    # -- queries ---------------------------------------------------------
    def count(self, kind: str) -> int:
        """Occurrences of ``kind`` so far."""
        return self.counters.get(kind, 0)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All retained records of one kind, in time order."""
        return [r for r in self.records if r.kind == kind]

    def span(self) -> Tuple[float, float]:
        """(first, last) record timestamps."""
        if not self.records:
            raise ValueError("empty trace")
        return self.records[0].time, self.records[-1].time

    def summary(self) -> str:
        """Counter table, most frequent first."""
        lines = ["trace summary:"]
        for kind, n in self.counters.most_common():
            lines.append(f"  {kind:24s} {n}")
        return "\n".join(lines)

    def to_chrome_trace(self) -> List[Dict[str, Any]]:
        """Records as Chrome-tracing (catapult) events.

        Load the JSON-dumped result in ``chrome://tracing`` or
        Perfetto: each message becomes an instant event on its source
        rank's row with destination/size/transport as args; other
        record kinds become instant events on a "sim" row.  Timestamps
        are microseconds, per the format.
        """
        events: List[Dict[str, Any]] = []
        for rec in self.records:
            if rec.kind == "message":
                events.append({
                    "name": f"msg→{rec.detail.get('dst')}",
                    "cat": rec.detail.get("transport", "msg"),
                    "ph": "i",
                    "s": "t",
                    "ts": rec.time * 1e6,
                    "pid": 0,
                    "tid": rec.detail.get("src", 0),
                    "args": dict(rec.detail),
                })
            elif not rec.kind.startswith("event:"):
                events.append({
                    "name": rec.kind,
                    "cat": "sim",
                    "ph": "i",
                    "s": "g",
                    "ts": rec.time * 1e6,
                    "pid": 0,
                    "tid": -1,
                    "args": dict(rec.detail),
                })
        return events
