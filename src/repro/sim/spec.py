"""Engine selection: one resolved :class:`EngineSpec` per world.

Before this module, picking a simulation engine meant combining a
``queue="heap"|"calendar"`` kwarg with a ``fastpath`` boolean scattered
across :class:`~repro.api.Session`, the CLI, and the bench harness.
Four engines now sit behind one name:

``reference``
    Heap-queue scheduler, reference pt2pt choreography (no macro-event
    fast path).  The ground truth every other engine is differentially
    tested against.
``calendar``
    Calendar-queue scheduler with the macro-event fast path (the PR 3
    engine, and still the default).  The fast path disarms itself under
    faults / tracing / span recording; the calendar queue stays.
``sharded``
    The calendar engine partitioned into per-node-group shards, each
    advancing on its own queue and synchronizing only at inter-shard
    message boundaries with conservative lookahead equal to the NIC
    latency ``L`` (intra-node PiP traffic never crosses a shard).
    Optionally executes shards across forked worker processes.
``analytic``
    The calendar engine plus a vectorized evaluator that computes whole
    collective rounds in numpy (per-call, for whitelisted lockstep
    algorithms), falling back to the event loop otherwise.

Every entry point funnels through :func:`resolve_engine` — the *single*
place downgrade rules live.  Downgrades are explicit and queryable:
``spec.downgrades`` names every rule that fired.

Downgrade rules
---------------
========= ==========================================================
engine    auto-downgrade condition
========= ==========================================================
calendar  fast path off under ``faults`` / ``tracer`` / ``obs``
sharded   → calendar under faults / tracer / obs / reliable /
          fabric / ft, or on single-node worlds;
          ``workers`` → 1 when resource telemetry is attached
analytic  → calendar under faults / tracer / obs / reliable /
          fabric / ft / resource telemetry
========= ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

#: engine names accepted by ``engine=`` everywhere
ENGINE_NAMES = ("reference", "calendar", "sharded", "analytic")

#: default shard-count cap for ``engine="sharded"`` (one shard per
#: node up to this many; CI perf gates run 8-shard 128-node worlds)
DEFAULT_MAX_SHARDS = 8


@dataclass(frozen=True)
class EngineSpec:
    """A fully-resolved engine selection.

    Everything the runtime needs to build a simulator — plus the
    audit trail of what was requested and which downgrade rules fired.
    """

    #: resolved engine name (one of :data:`ENGINE_NAMES`)
    name: str
    #: scheduler backend: ``"calendar"`` or ``"heap"``
    queue: str
    #: macro-event pt2pt fast path armed?
    fastpath: bool
    #: number of shards (1 = unsharded)
    shards: int = 1
    #: worker processes executing shards (1 = sequential windowed)
    workers: int = 1
    #: per-call vectorized analytic evaluator attached?
    analytic: bool = False
    #: the engine string originally requested (None = legacy kwargs)
    requested: Optional[str] = None
    #: human-readable downgrade rules that fired, in order
    downgrades: Tuple[str, ...] = field(default=())

    @property
    def sharded(self) -> bool:
        """True when the world runs on the sharded kernel."""
        return self.shards > 1

    def describe(self) -> str:
        """One-line summary for logs and ``repro info``."""
        bits = [self.name, f"queue={self.queue}",
                f"fastpath={'on' if self.fastpath else 'off'}"]
        if self.shards > 1:
            bits.append(f"shards={self.shards}")
            bits.append(f"workers={self.workers}")
        if self.analytic:
            bits.append("analytic=on")
        if self.downgrades:
            bits.append("downgraded: " + "; ".join(self.downgrades))
        return " ".join(bits)


def _parse_engine(text: str) -> Tuple[str, Optional[int], Optional[int]]:
    """``"sharded:8x4"`` → ``("sharded", 8, 4)``; plain names pass through."""
    name, sep, rest = text.partition(":")
    if not sep:
        return name, None, None
    if name != "sharded":
        raise ValueError(
            f"engine {text!r}: only 'sharded' takes a ':<shards>[x<workers>]' "
            "suffix"
        )
    shards_s, sep, workers_s = rest.partition("x")
    try:
        shards = int(shards_s)
        workers = int(workers_s) if sep else None
    except ValueError:
        raise ValueError(
            f"engine {text!r}: expected 'sharded:<shards>[x<workers>]'"
        ) from None
    return name, shards, workers


def resolve_engine(
    engine: "Union[str, EngineSpec, None]" = None,
    *,
    queue: Optional[str] = None,
    fastpath: Optional[bool] = None,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    faults: bool = False,
    tracer: bool = False,
    obs: bool = False,
    reliable: bool = False,
    fabric: bool = False,
    ft: bool = False,
    resources: bool = False,
    nodes: Optional[int] = None,
) -> EngineSpec:
    """Resolve an engine request against the world's configuration.

    ``engine`` is an engine name (``"sharded"``, ``"sharded:8"``,
    ``"sharded:8x4"``, ...), an already-resolved :class:`EngineSpec`
    (re-validated against this world's conditions), or ``None`` — the
    legacy path, honouring the old ``queue=`` / ``fastpath=`` kwargs.

    The remaining keyword flags describe what is attached to the world;
    they drive the auto-downgrade rules documented in the module
    docstring.  This function is the *only* place those rules exist.
    """
    if isinstance(engine, EngineSpec):
        # Re-resolve from what was originally asked for, preserving
        # explicit shard/worker counts.
        return resolve_engine(
            engine.requested or engine.name,
            shards=shards if shards is not None else
            (engine.shards if engine.shards > 1 else None),
            workers=workers if workers is not None else
            (engine.workers if engine.workers > 1 else None),
            faults=faults, tracer=tracer, obs=obs, reliable=reliable,
            fabric=fabric, ft=ft, resources=resources, nodes=nodes,
        )

    downgrades = []

    if engine is None:
        # Legacy kwargs: exactly the pre-EngineSpec behaviour.
        q = queue if queue is not None else "calendar"
        if q not in ("calendar", "heap"):
            raise ValueError(f"unknown queue backend {q!r}")
        fast = (fastpath if fastpath is not None else True) \
            and not faults and not tracer and not obs
        if (fastpath is None or fastpath) and (faults or tracer or obs):
            downgrades.append(_fast_off_reason(faults, tracer, obs))
        name = ("calendar" if q == "calendar"
                else ("heap" if fast else "reference"))
        return EngineSpec(name=name, queue=q, fastpath=fast,
                          requested=None, downgrades=tuple(downgrades))

    if queue is not None or fastpath is not None:
        raise ValueError(
            "pass either engine= or the legacy queue=/fastpath= kwargs, "
            "not both"
        )

    requested = engine
    name, spec_shards, spec_workers = _parse_engine(engine)
    if name not in ENGINE_NAMES:
        raise ValueError(
            f"unknown engine {engine!r}; available: {', '.join(ENGINE_NAMES)}"
        )
    if shards is None:
        shards = spec_shards
    if workers is None:
        workers = spec_workers

    if name == "reference":
        return EngineSpec(name="reference", queue="heap", fastpath=False,
                          requested=requested)

    if name in ("sharded", "analytic"):
        blockers = []
        if faults:
            blockers.append("faults attached")
        if tracer:
            blockers.append("tracer attached")
        if obs:
            blockers.append("span recorder attached")
        if reliable:
            blockers.append("reliable transport")
        if fabric:
            blockers.append("fabric topology attached")
        if ft:
            blockers.append("fault-tolerance layer attached")
        if name == "analytic" and resources:
            # The evaluator bypasses RateLimiter.reserve, where the
            # resource monitor's recording hooks live.
            blockers.append("resource telemetry attached")
        if name == "sharded" and not blockers:
            if nodes is None or nodes < 2:
                blockers.append("single-node world")
        if blockers:
            downgrades.append(
                f"{name} → calendar ({'; '.join(blockers)})")
            name = "calendar"

    if name == "sharded":
        if shards is None:
            shards = min(nodes, DEFAULT_MAX_SHARDS)
        if shards < 2:
            downgrades.append("sharded → calendar (fewer than 2 shards)")
            name = "calendar"
        elif nodes is not None and shards > nodes:
            downgrades.append(
                f"shards clamped to node count ({shards} → {nodes})")
            shards = nodes

    if name == "sharded":
        if workers is None:
            workers = 1
        if workers > shards:
            workers = shards
        if workers > 1 and resources:
            downgrades.append(
                "workers → 1 (resource telemetry needs sequential "
                "sharded execution)")
            workers = 1
        return EngineSpec(name="sharded", queue="calendar", fastpath=True,
                          shards=shards, workers=max(workers, 1),
                          requested=requested,
                          downgrades=tuple(downgrades))

    analytic = name == "analytic"
    # calendar (directly requested, or the downgrade target): the fast
    # path still honours the PR 3 disarm rules.
    fast = not faults and not tracer and not obs
    if not fast:
        downgrades.append(_fast_off_reason(faults, tracer, obs))
        analytic = False
    return EngineSpec(name="analytic" if analytic else "calendar",
                      queue="calendar", fastpath=fast, analytic=analytic,
                      requested=requested, downgrades=tuple(downgrades))


def _fast_off_reason(faults: bool, tracer: bool, obs: bool) -> str:
    causes = [label for flag, label in (
        (faults, "faults"), (tracer, "tracer"), (obs, "span recorder"),
    ) if flag]
    return "fast path off (" + ", ".join(causes) + " attached)"
