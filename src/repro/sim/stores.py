"""FIFO message stores (process mailboxes).

A :class:`Store` is an unbounded FIFO queue connecting producer and
consumer processes.  ``put`` never blocks; ``get`` returns an event that
fires when an item is available.  Items are delivered in put order and
getters are served in get order — both strictly FIFO, for determinism.

:class:`FilterStore` additionally lets a getter wait for the first item
matching a predicate (used for MPI tag matching fallbacks in tests; the
real runtime keeps its own matching queues).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional, Tuple

from .events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator


class Store:
    """Unbounded FIFO store."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev


class FilterStore:
    """FIFO store whose getters may specify a predicate.

    Each pending getter holds a predicate; on ``put`` the oldest getter
    whose predicate accepts the item receives it.  On ``get`` the oldest
    matching stored item is returned.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._items: List[Any] = []
        self._getters: List[Tuple[Event, Callable[[Any], bool]]] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``, serving the oldest matching getter."""
        for idx, (ev, pred) in enumerate(self._getters):
            if pred(item):
                del self._getters[idx]
                ev.succeed(item)
                return
        self._items.append(item)

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        """Event firing with the oldest item matching ``predicate``."""
        pred = predicate if predicate is not None else (lambda _item: True)
        ev = Event(self.sim)
        for idx, item in enumerate(self._items):
            if pred(item):
                del self._items[idx]
                ev.succeed(item)
                return ev
        self._getters.append((ev, pred))
        return ev
