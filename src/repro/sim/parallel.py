"""Fork-based parallel execution of the sharded simulation kernel.

:func:`run_parallel` forks ``workers`` processes *after* the rank
processes have been spawned, so every worker inherits a complete copy
of the world (generators, buffers, queues — none of which could be
pickled).  Each worker owns a contiguous block of shards and executes
the same conservative windows as the sequential loop in
:meth:`~repro.sim.shard.ShardedSimulator.run`; the parent is a pure
coordinator:

1. every worker reports the earliest pending time over its owned
   shards, its cross-worker outbox, and its local hard-sync state;
2. the parent computes the global window horizon ``H = m + L`` (``m``
   includes in-flight cross-worker entries and a completed hard-sync's
   release time), routes outbox entries to their owners, and
   broadcasts;
3. workers apply their inbox, run their shards to ``H``, and report.

Cross-worker messages are exactly the sharded network transport's
``(_eager_arrive, (dst_node, wire, desc, world))`` items — the only
item shape :meth:`~repro.sim.shard.ShardedSimulator.call_at_node` emits
across shard boundaries.  They are re-materialised on the receiving
side from plain ints/bytes (the payload snapshot travels by value,
since the sender's buffer copy diverges after the fork), keeping their
full ordering key, so per-shard event sequences — and with them every
timestamp and byte — are identical to a sequential sharded run.  The
differential suite asserts exactly that.

When all queues drain, workers ship their results home: rank return
values, per-node hardware counters, matching-engine quiescence counts,
per-shard clocks and event counts.  The parent patches its (never-run)
world so ``world.run``'s normal epilogue — deadlock detection, stats,
``assert_quiescent`` — works unchanged.

A world can run in parallel once: the parent's simulation state is
consumed by the patch-up.  Bench and session entry points build a
fresh world per run, so this only bites hand-driven reuse, which gets
a clear error.
"""

from __future__ import annotations

import os
from heapq import heappush
from multiprocessing import Pipe
from typing import Any, Dict, List

import numpy as np

from ..obs import host


def _encode_outbox(outbox: List[tuple]) -> List[tuple]:
    """Flatten cross-worker queue entries into picklable tuples."""
    from ..transport.network import _eager_arrive

    encoded = []
    for dst_shard, (when, key, item) in outbox:
        fn, arg = item
        if fn is not _eager_arrive:  # pragma: no cover - contract guard
            raise TypeError(
                f"unexpected cross-shard item {fn!r}; only network "
                "arrivals may cross a worker boundary"
            )
        dst_node, wire, desc, _world = arg
        env = desc.envelope
        payload = desc.payload
        encoded.append((
            dst_shard, when, key,
            dst_node.node_id, wire,
            (env.comm_id, env.src, env.tag, desc.nbytes,
             None if payload is None else bytes(payload),
             desc.wire.src, desc.wire.dst, desc.wire.nbytes,
             desc.wire.buf_key, dict(desc.wire.meta),
             desc.src_world, desc.dst_world),
        ))
    return encoded


def _apply_inbox(world, inbox: List[tuple]) -> None:
    """Re-materialise encoded entries into this worker's shard heaps."""
    from ..runtime.message import Envelope, MessageDescriptor
    from ..transport.base import WireDescriptor
    from ..transport.network import _eager_arrive

    sim = world.sim
    for (dst_shard, when, key, node_id, wire, d) in inbox:
        (comm_id, src, tag, nbytes, payload, w_src, w_dst, w_nbytes,
         buf_key, meta, src_world, dst_world) = d
        wire_desc = WireDescriptor(src=w_src, dst=w_dst, nbytes=w_nbytes,
                                   buf_key=buf_key)
        wire_desc.meta.update(meta)
        desc = MessageDescriptor(
            envelope=Envelope(comm_id, src, tag),
            nbytes=nbytes,
            payload=None if payload is None
            else np.frombuffer(payload, np.uint8),
            wire=wire_desc,
            transport=world.network,
            src_world=src_world,
            dst_world=dst_world,
        )
        dst_node = world.hw.nodes[node_id]
        sim._push_entry(dst_shard, (when, key,
                                    (_eager_arrive,
                                     (dst_node, wire, desc, world))))


def _worker_loop(world, procs, owned: List[int], conn, w: int = 0) -> None:
    """Child process: execute owned shards window by window."""
    sim = world.sim
    sim._owned = set(owned)
    hard_sync = world.hard_sync_barrier
    base_events = sim._event_count
    tracer = host.active()
    track = f"worker{w}"
    conn.send(("report", sim._min_time(owned_only=True), [], []))
    while True:
        if tracer is None:
            msg = conn.recv()
        else:
            t0 = tracer.clock()
            msg = conn.recv()
            tracer.span_at("worker.idle", t0, tracer.clock(),
                           track=track, cat="engine")
        if msg[0] == "stop":
            break
        _tag, horizon, inbox, release = msg
        if release is not None:
            tmax, key_r, positions = release
            hard_sync.release_all(tmax, key_r, positions)
        if inbox:
            _apply_inbox(world, inbox)
        if tracer is None:
            for shard in owned:
                sim.run_shard(shard, horizon)
        else:
            t0 = tracer.clock()
            for shard in owned:
                if not sim._heaps[shard]:
                    continue
                s0 = tracer.clock()
                sim.run_shard(shard, horizon)
                tracer.span_at("shard.advance", s0, tracer.clock(),
                               track=f"shard{shard}", cat="engine")
            tracer.span_at("worker.window", t0, tracer.clock(),
                           track=track, cat="engine")
        outbox = _encode_outbox(sim._outbox)
        sim._outbox.clear()
        conn.send(("report", sim._min_time(owned_only=True), outbox,
                   hard_sync.waiter_meta()))
    # -- ship results home -------------------------------------------
    owned_set = set(owned)
    cluster = world.cluster
    ranks = {}
    ctx_counters = {}
    match = {}
    for rank in range(cluster.world_size):
        if sim._shard_of_node[cluster.node_of(rank)] not in owned_set:
            continue
        proc = procs[rank]
        if proc.triggered:
            ranks[rank] = (bool(proc.ok), proc._value)
        ctx = world.contexts[rank]
        ctx_counters[rank] = (ctx.nic_msgs, ctx.nic_bytes)
        engine = world.matching[rank]
        match[rank] = (engine.unexpected_messages, engine.pending_receives)
    nodes = {}
    for node in world.hw.nodes:
        if sim._shard_of_node[node.node_id] not in owned_set:
            continue
        nodes[node.node_id] = (
            node.tx_messages, node.rx_messages,
            node.tx._busy_time, node.tx._next_free,
            node.rx._busy_time, node.rx._next_free,
            node.membus._busy_time, node.membus._next_free,
        )
    conn.send(("final", {
        "ranks": ranks,
        "ctx": ctx_counters,
        "match": match,
        "nodes": nodes,
        "clocks": {s: sim._clocks[s] for s in owned},
        "events": sim._event_count - base_events,
        # Telemetry rides the same final message the results take;
        # drain() ships only events this child emitted (fork-safe).
        "telemetry": tracer.drain() if tracer is not None else None,
    }))


def run_parallel(world, procs) -> None:
    """Execute a spawned sharded world across forked workers.

    Called by :meth:`World.run <repro.runtime.world.World.run>` in
    place of ``sim.run()`` when ``spec.workers > 1``.  On return the
    parent's processes, counters, clocks and quiescence state look as
    if the run had happened in-process.
    """
    sim = world.sim
    if getattr(sim, "_parallel_consumed", False):
        raise RuntimeError(
            "this world already ran with parallel workers; its parent-side "
            "simulation state is consumed — build a fresh world per run"
        )
    sim._parallel_consumed = True
    nworkers = sim.workers
    nshards = sim.shards
    owner = [s * nworkers // nshards for s in range(nshards)]
    owned_by = [[s for s in range(nshards) if owner[s] == w]
                for w in range(nworkers)]
    conns = []
    pids = []
    for w in range(nworkers):
        parent_conn, child_conn = Pipe()
        pid = os.fork()
        if pid == 0:
            # Child: drop the parent ends (ours and earlier workers').
            parent_conn.close()
            for other, _pid in zip(conns, pids):
                other.close()
            code = 0
            try:
                _worker_loop(world, procs, owned_by[w], child_conn, w)
            except BaseException:  # pragma: no cover - shipped to parent
                import traceback

                code = 1
                try:
                    child_conn.send(("error", traceback.format_exc()))
                except Exception:
                    pass
            finally:
                child_conn.close()
                os._exit(code)
        child_conn.close()
        conns.append(parent_conn)
        pids.append(pid)

    lookahead = sim.lookahead
    world_size = world.cluster.world_size
    tracer = host.active()
    try:
        reports = [_recv(conn) for conn in conns]
        while True:
            round_t0 = tracer.clock() if tracer is not None else 0.0
            minima = [r[1] for r in reports]
            all_out = [entry for r in reports for entry in r[2]]
            if tracer is not None and all_out:
                tracer.count("cross_worker_msgs_total", len(all_out))
            metas = [r[3] for r in reports]
            releases: List[Any] = [None] * nworkers
            release_time = None
            if sum(len(meta) for meta in metas) >= world_size:
                # Every rank has arrived at the hard sync: compute the
                # reference-exact release key and the global arrival
                # positions (heap order of the arriving dispatches).
                all_meta = [w for meta in metas for w in meta]
                key_r = world.hard_sync_barrier.release_key(all_meta)
                release_time = key_r[0][0]
                order = sorted(
                    range(len(all_meta)),
                    key=lambda i: (all_meta[i][0], all_meta[i][1]))
                positions = [0] * len(all_meta)
                for p, i in enumerate(order):
                    positions[i] = p
                base = 0
                for w, meta in enumerate(metas):
                    releases[w] = (release_time, key_r,
                                   positions[base:base + len(meta)])
                    base += len(meta)
            m = min(minima)
            for entry in all_out:
                if entry[1] < m:
                    m = entry[1]
            if release_time is not None and release_time < m:
                m = release_time
            if m == float("inf"):
                break
            horizon = m + lookahead
            inboxes: List[List[tuple]] = [[] for _ in range(nworkers)]
            for entry in all_out:
                inboxes[owner[entry[0]]].append(entry)
            for w, conn in enumerate(conns):
                conn.send(("window", horizon, inboxes[w], releases[w]))
            reports = [_recv(conn) for conn in conns]
            if tracer is not None:
                # Full round latency: route + broadcast + the slowest
                # worker's window (reports arrive when all are done).
                tracer.span_at("coord.round", round_t0, tracer.clock(),
                               track="coordinator", cat="engine")
        for conn in conns:
            conn.send(("stop",))
        finals = [_recv(conn)[1] for conn in conns]
    finally:
        for conn in conns:
            conn.close()
        for pid in pids:
            os.waitpid(pid, 0)

    # -- patch the parent's world ------------------------------------
    quiescence: Dict[int, Any] = {}
    total_events = sim._event_count
    for final in finals:
        for rank, (ok, value) in final["ranks"].items():
            proc = procs[rank]
            proc._ok = ok
            proc._value = value
            proc.callbacks = None
        for rank, (msgs, nbytes) in final["ctx"].items():
            ctx = world.contexts[rank]
            ctx.nic_msgs, ctx.nic_bytes = msgs, nbytes
        quiescence.update(final["match"])
        for node_id, c in final["nodes"].items():
            node = world.hw.nodes[node_id]
            (node.tx_messages, node.rx_messages,
             node.tx._busy_time, node.tx._next_free,
             node.rx._busy_time, node.rx._next_free,
             node.membus._busy_time, node.membus._next_free) = c
        for shard, clock in final["clocks"].items():
            sim._clocks[shard] = clock
        total_events += final["events"]
        if tracer is not None:
            tracer.absorb(final.get("telemetry"))
    sim._event_count = total_events
    sim.now = max(sim._clocks)
    # Parent-side heaps still hold the (now executed-elsewhere) items;
    # drop them so the queue reads as drained.
    for heap in sim._heaps:
        heap.clear()
    world._parallel_quiescence = quiescence


def _recv(conn):
    msg = conn.recv()
    if msg[0] == "error":
        raise RuntimeError(f"sharded worker failed:\n{msg[1]}")
    return msg
