"""Generator-based processes for the simulation kernel.

A *process* wraps a Python generator that yields :class:`Event` objects.
Each time a yielded event is processed, the generator is resumed with the
event's value (or the event's exception is thrown into it, if the event
failed).  The process itself is an :class:`Event` that fires when the
generator returns; its value is the generator's return value, which lets
simulated MPI ranks ``return`` results and callers ``yield proc`` to join
them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .errors import Interrupt
from .events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator

ProcGen = Generator[Event, Any, Any]


class Process(Event):
    """A running simulated activity.

    Parameters
    ----------
    sim:
        Owning simulator.
    generator:
        The generator to drive.  Must yield :class:`Event` instances.
    name:
        Optional label used in error messages and ``repr``.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: ProcGen, name: Optional[str] = None) -> None:
        super().__init__(sim)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick-start at the current time via an initialisation event.
        init = Event(sim)
        init.callbacks.append(self._resume)
        init._ok = True
        init._value = None
        sim._push(init)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is detached; if it fires
        later it is simply ignored by this process.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already terminated")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._waiting_on = None
        hit = Event(self.sim)
        hit.callbacks.append(self._resume)
        hit._ok = False
        hit._value = Interrupt(cause)
        self.sim._push(hit)

    # -- internal ------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event.ok:
                target = self.generator.send(event.value)
            else:
                target = self.generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            # Propagate failure to joiners; if nobody is listening the
            # simulator surfaces it (see Simulator.step).
            self.fail(exc)
            return
        if not isinstance(target, Event):
            err = TypeError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            )
            self.generator.close()
            self.fail(err)
            return
        if target.processed:
            # Already-processed event: resume immediately (same timestamp).
            hop = Event(self.sim)
            hop.callbacks.append(self._resume)
            hop._ok = target.ok
            hop._value = target._value
            self.sim._push(hop)
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
