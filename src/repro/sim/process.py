"""Generator-based processes for the simulation kernel.

A *process* wraps a Python generator that yields :class:`Event` objects.
Each time a yielded event is processed, the generator is resumed with the
event's value (or the event's exception is thrown into it, if the event
failed).  The process itself is an :class:`Event` that fires when the
generator returns; its value is the generator's return value, which lets
simulated MPI ranks ``return`` results and callers ``yield proc`` to join
them.

Fast-path sleeps
----------------
Besides events, a generator may yield a bare ``float``: *sleep that many
seconds*.  A float sleep schedules the process's cached wake callable
directly on the queue — no :class:`~repro.sim.events.Timeout`, no
callback list, no per-sleep allocation at all — and is the backbone of
the macro-event fast path.  A sleeping process cannot be interrupted
(:meth:`Process.interrupt` raises); code that needs interruptible waits
yields a real ``Timeout``.  Ints are *not* accepted (``yield 42`` stays
a bug, not a 42-second nap).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .errors import Interrupt
from .events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator

ProcGen = Generator[Event, Any, Any]

#: sentinel marking a process suspended in a float sleep
_SLEEPING = object()


class Process(Event):
    """A running simulated activity.

    Parameters
    ----------
    sim:
        Owning simulator.
    generator:
        The generator to drive.  Must yield :class:`Event` instances
        or floats (sleeps).
    name:
        Optional label used in error messages and ``repr``.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_wake_cb", "_send_cb",
                 "_throw_cb")

    def __init__(self, sim: "Simulator", generator: ProcGen, name: Optional[str] = None) -> None:
        super().__init__(sim)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Any] = None
        # Bound methods are cached once so scheduling a resume never
        # allocates (these are pushed on the queue as bare callables).
        self._wake_cb = self._wake
        self._send_cb = self._send
        self._throw_cb = self._throw
        # Kick-start at the current time (starts the generator).
        sim._seq += 1
        sim._queue.push(sim.now, sim._seq, (self._send_cb, None))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is detached; if it fires
        later it is simply ignored by this process.  A process suspended
        in a fast-path float sleep cannot be interrupted.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already terminated")
        target = self._waiting_on
        if target is _SLEEPING:
            raise RuntimeError(
                f"{self!r} is in a fast-path sleep and cannot be interrupted; "
                "yield a Timeout event for interruptible waits"
            )
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._waiting_on = None
        sim = self.sim
        sim._seq += 1
        sim._queue.push(sim.now, sim._seq, (self._throw_cb, Interrupt(cause)))

    # -- internal ------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Event callback: resume the generator with the event's outcome."""
        self._waiting_on = None
        try:
            if event._ok:
                target = self.generator.send(event._value)
            else:
                target = self.generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            # Propagate failure to joiners; if nobody is listening the
            # simulator surfaces it (see Simulator.step).
            self.fail(exc)
            return
        self._proceed(target)

    def _wake(self) -> None:
        """Queue callable: resume after a float sleep."""
        self._waiting_on = None
        try:
            target = self.generator.send(None)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        self._proceed(target)

    def _send(self, value: Any) -> None:
        """Queue callable: resume (or start) with ``value``."""
        self._waiting_on = None
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        self._proceed(target)

    def _throw(self, exc: BaseException) -> None:
        """Queue callable: throw ``exc`` into the generator."""
        self._waiting_on = None
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as caught:
            self.fail(caught)
            return
        self._proceed(target)

    def _proceed(self, target: Any) -> None:
        """Suspend on whatever the generator yielded."""
        if target.__class__ is float:
            # Sleep: push the cached wake callable, nothing else.
            self._waiting_on = _SLEEPING
            sim = self.sim
            sim._seq += 1
            sim._queue.push(sim.now + target, sim._seq, self._wake_cb)
            return
        if isinstance(target, Event):
            if target.callbacks is None:
                # Already-processed event: resume at the same timestamp
                # via a lightweight hop (keeps FIFO fairness without
                # allocating an Event).
                sim = self.sim
                sim._seq += 1
                if target._ok:
                    sim._queue.push(sim.now, sim._seq,
                                    (self._send_cb, target._value))
                else:
                    sim._queue.push(sim.now, sim._seq,
                                    (self._throw_cb, target._value))
            else:
                self._waiting_on = target
                target.callbacks.append(self._resume)
            return
        err = TypeError(
            f"process {self.name!r} yielded {target!r}; processes "
            f"must yield Event objects or float sleeps"
        )
        self.generator.close()
        self.fail(err)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
