"""Exception types for the discrete-event simulation kernel."""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulation-kernel errors."""


class EventAlreadyTriggered(SimError):
    """An event was succeeded or failed more than once."""


class StopSimulation(SimError):
    """Raised internally to stop :meth:`Simulator.run` at a deadline."""


class Interrupt(SimError):
    """Delivered into a process that another process interrupted.

    The interrupting party may attach a ``cause`` describing why.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause
