"""Core event primitives for the discrete-event simulation kernel.

The kernel follows the classic event/process co-routine design (as in
SimPy): an :class:`Event` is a one-shot future with callbacks; a process
(see :mod:`repro.sim.process`) is a generator that yields events and is
resumed when the yielded event fires.

Only the pieces the virtual-MPI runtime needs are implemented, but they
are implemented completely: success/failure values, composite conditions
(:class:`AllOf` / :class:`AnyOf`), and deterministic FIFO ordering of
same-timestamp events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from .errors import EventAlreadyTriggered

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator

# Sentinel distinguishing "not yet triggered" from a ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event is created *pending*; it becomes *triggered* when
    :meth:`succeed` or :meth:`fail` is called (which schedules it on the
    simulator's queue) and *processed* once the simulator has popped it
    and run its callbacks.

    Attributes
    ----------
    sim:
        The owning :class:`~repro.sim.engine.Simulator`.
    callbacks:
        Callables invoked with the event when it is processed.  ``None``
        after processing (appending then is an error).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        if self._value is _PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        Returns the event so calls can be chained/scheduled inline.
        """
        if self._value is not _PENDING:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._push(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        A failed event re-raises ``exception`` inside every process
        waiting on it.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() expects an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._push(self)
        return self

    # -- composition ---------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._push(self, delay)


class Condition(Event):
    """Base for composite events over a set of child events.

    Subclasses define :meth:`_evaluate`, which decides when the
    condition has been met.  The condition's value is a dict mapping
    each *triggered* child event to its value, in trigger order.
    """

    __slots__ = ("events", "_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events: List[Event] = list(events)
        self._done: List[Event] = []
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.sim is not sim:
                raise ValueError("cannot mix events from different simulators")
            if ev.processed:
                self._child_fired(ev)
            else:
                ev.callbacks.append(self._child_fired)

    def _child_fired(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._done.append(event)
        if self._evaluate():
            self.succeed({ev: ev.value for ev in self._done})

    def _evaluate(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(Condition):
    """Fires when *all* child events have fired."""

    __slots__ = ()

    def _evaluate(self) -> bool:
        return len(self._done) == len(self.events)


class AnyOf(Condition):
    """Fires when *any one* child event has fired."""

    __slots__ = ()

    def _evaluate(self) -> bool:
        return len(self._done) >= 1
