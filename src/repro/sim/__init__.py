"""Deterministic discrete-event simulation kernel (subsystem S1).

This is the substrate everything else runs on: simulated MPI ranks are
:class:`Process` generators scheduled by a :class:`Simulator`, network
and memory facilities are :class:`Resource`/:class:`RateLimiter`
instances, and mailboxes are :class:`Store` queues.
"""

from .engine import Simulator
from .errors import EventAlreadyTriggered, Interrupt, SimError, StopSimulation
from .events import AllOf, AnyOf, Condition, Event, Timeout
from .process import Process
from .resources import RateLimiter, Request, Resource
from .shard import ShardedSimulator
from .spec import ENGINE_NAMES, EngineSpec, resolve_engine
from .stores import FilterStore, Store
from .trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ENGINE_NAMES",
    "EngineSpec",
    "Event",
    "EventAlreadyTriggered",
    "FilterStore",
    "Interrupt",
    "Process",
    "RateLimiter",
    "Request",
    "Resource",
    "SimError",
    "ShardedSimulator",
    "Simulator",
    "StopSimulation",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "resolve_engine",
]
