"""Sharded simulation kernel: conservative windowed parallel DES.

The cluster's nodes are partitioned into contiguous *shards*; each
shard advances on its own event queue.  Intra-node traffic (the PiP
hot path) never leaves its shard, so shards only interact through
inter-node messages — and every inter-node effect in the machine model
is delayed by at least the NIC latency ``L`` (the wire must be crossed
before anything on the destination node can change).  That gives a
conservative lookahead: with ``m`` the earliest pending event across
all shards, every event before the horizon ``H = m + L`` can execute
without seeing any not-yet-produced cross-shard input.  The run loop
is a sequence of such windows.

Cross-shard scheduling goes through :meth:`ShardedSimulator.call_at_node`
— the network transport routes a message's *arrival* into the
destination node's shard, so destination-side pipe reservations and
matching always execute under the destination shard's queue (executing
them from the source shard would let a window overtake them).

Determinism
-----------
The global engine orders same-time events by push sequence — a single
integer that shards cannot share and stay independent.  But the
sequence order of two same-time entries is fully determined by their
*genealogy*: sequence numbers are monotone in push time, and two
pushes made at the same instant are ordered by the dispatch order of
their pushing entries — which is those entries' heap order, i.e. the
same question one generation up.  The recursion grounds at the
pre-run pushes (process spawns), which are globally ordered by spawn
order.  Entries therefore carry the genealogy key — conceptually the
recursion ::

    key(entry) = (push_time, key(parent entry), child_index)

where ``parent`` is the entry whose dispatch made the push and
``child_index`` counts that dispatch's pushes — stored *flattened* as
a pair of flat tuples::

    key   = (times, idxs)
    times = (t_n, t_{n-1}, ..., t_0)   # push times, newest first
    idxs  = (i_0, i_1, ...,  i_n)      # child indices, oldest first

Lexicographic comparison of the pair walks push times newest→oldest
and then child indices oldest→newest, with an all-equal shorter
``times`` sorting first — exactly the order the nested form induces
(unrolling the recursion compares ``t_n, t_{n-1}, …, t_0`` on the way
down and ``i_0, i_1, …, i_n`` on the way back up, and a genealogy
that bottoms out first loses by the empty-prefix rule), but as two
C-level tuple comparisons instead of a Python-level walk.  This
matters because node-symmetric collectives produce genealogies whose
push times are identical for dozens of generations while their root
order differs: ``times`` tuples are value-interned per simulator, so
those dominant comparisons hit CPython's identity fast path and
resolve in O(1), after which the ``idxs`` of distinct ranks differ at
element 0 (the spawn index).  Keys are unique (a parent dispatches
once; siblings differ in ``child_index``), so heap comparisons never
reach the item.

A key carries one time and one index per live ancestor generation.
Hard-sync barriers collapse the ancestry: every post-barrier chain
descends from the single release key (see :class:`ShardedHardSync`),
so iterated benchmarks — the sharded engine's target workload — keep
genealogies shallow and the intern table small.

The differential matrix (`tests/validate/test_differential.py`) gates
this key: sharded runs must be byte- and timestamp-identical to the
reference engine, for every shard count.

Parallel execution (``workers > 1``) forks worker processes that each
own a subset of shards and run this same windowed protocol in lockstep
(see :mod:`repro.sim.parallel`); keys travel with cross-worker entries,
so per-shard event sequences are identical to sequential mode by
construction.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Any, List, Optional, Tuple

from .engine import Simulator
from .events import Event
from ..obs import host

#: the root key — parent of pre-run pushes (process spawns)
_ROOT: Tuple = ((), ())
#: child-index step inside a hard-sync release callback: waiter ``p``'s
#: pushes get indices ``p + i * _RELEASE_STEP``, ordering all released
#: ranks' pushes by (arrival position, push order) under one shared
#: parent key, exactly like the reference engine's single release
#: event running its callbacks back to back.  Exact in binary floating
#: point for < 2**20 pushes per callback.
_RELEASE_STEP = 2.0 ** -20


class _Group:
    """One genealogy timeline's same-instant entries: a FIFO with an
    insort escape hatch.

    The previous generation pops its node-symmetric entries in key
    (≈ rank) order and each dispatch pushes its successors, so pushes
    into a group arrive *already sorted* almost always — ``push`` is
    an append guarded by one C int-tuple comparison, and ``pop`` is an
    index bump.  Out-of-order pushes (interleaved cross-shard sources)
    fall back to :func:`bisect.insort`; ``lo=head`` is safe because a
    dispatch only mints keys greater than the one executing, so no
    insert can land before the consumed prefix.
    """

    __slots__ = ("entries", "head")

    def __init__(self, entry: tuple) -> None:
        self.entries = [entry]
        self.head = 0


class _Bucket:
    """Same-instant entries, grouped by genealogy timeline.

    ``groups`` is the key order: ascending ``(times, group)`` pairs —
    keys sort grouped by their ``times`` half, so group-major order
    *is* lexicographic key order.  ``byid`` finds a push's group by
    the identity of its interned ``times`` — no value hashing, no
    value comparison — and the value-ordered group insort happens
    once per distinct timeline per instant.
    """

    __slots__ = ("groups", "byid")

    def __init__(self) -> None:
        self.groups: list = []
        self.byid: dict = {}


class _ShardQueue:
    """Per-shard pending-event structure: a dict of exact-``when``
    buckets under a heap of the distinct pending times.

    The sharded workload is storms of *identical* timestamps — every
    rank of a symmetric collective schedules the same model times, as
    the same floats — so bucketing by exact ``when`` collapses each
    storm into one :class:`_Bucket` and the ``_times`` heap stays
    tiny (its comparisons are bare C floats).  Keys are unique, so
    items are never compared.
    """

    __slots__ = ("_buckets", "_times", "_size")

    def __init__(self) -> None:
        self._buckets: dict = {}
        self._times: list = []
        self._size = 0

    def push(self, when: float, key: tuple, item: Any) -> None:
        bucket = self._buckets.get(when)
        if bucket is None:
            bucket = _Bucket()
            self._buckets[when] = bucket
            heappush(self._times, when)
        times = key[0]
        entry = (key[1], key, item)
        group = bucket.byid.get(id(times))
        if group is None:
            group = _Group(entry)
            bucket.byid[id(times)] = group
            insort(bucket.groups, (times, group))
        else:
            entries = group.entries
            if entry >= entries[-1]:
                entries.append(entry)
            else:
                insort(entries, entry, group.head)
        self._size += 1

    def pop_before(self, horizon: float):
        """Pop the earliest entry if it lies before ``horizon``, else
        return None — the one-call-per-event loop body of
        :meth:`ShardedSimulator.run_shard`."""
        times_heap = self._times
        if not times_heap:
            return None
        when = times_heap[0]
        if when >= horizon:
            return None
        bucket = self._buckets[when]
        groups = bucket.groups
        times, group = groups[0]
        entries = group.entries
        head = group.head
        _idxs, key, item = entries[head]
        head += 1
        if head == len(entries):
            groups.pop(0)
            del bucket.byid[id(times)]
            if not groups:
                del self._buckets[when]
                heappop(times_heap)
        else:
            group.head = head
        self._size -= 1
        return when, key, item

    def pop(self) -> tuple:
        when = self._times[0]
        bucket = self._buckets[when]
        groups = bucket.groups
        times, group = groups[0]
        entries = group.entries
        head = group.head
        _idxs, key, item = entries[head]
        head += 1
        if head == len(entries):
            groups.pop(0)
            del bucket.byid[id(times)]
            if not groups:
                del self._buckets[when]
                heappop(self._times)
        else:
            group.head = head
        self._size -= 1
        return when, key, item

    def peek_time(self) -> float:
        return self._times[0] if self._times else float("inf")

    def clear(self) -> None:
        self._buckets.clear()
        self._times.clear()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0


class _RouterQueue:
    """Stand-in for ``Simulator._queue`` that routes every push to the
    currently-executing shard.

    Processes and the engine push directly via ``sim._queue.push(when,
    seq, item)``; the global ``seq`` is ignored — sharded entries carry
    their own recursive ordering key (see module docstring).
    """

    __slots__ = ("sim",)

    def __init__(self, sim: "ShardedSimulator") -> None:
        self.sim = sim

    def push(self, when: float, seq: int, item: Any) -> None:
        self.sim._route(when, item)

    def peek_time(self) -> float:
        return self.sim._min_time()

    def __len__(self) -> int:
        return sum(len(h) for h in self.sim._heaps)

    def __bool__(self) -> bool:
        return any(self.sim._heaps)

    def pop(self):  # pragma: no cover - run()/step() are overridden
        raise RuntimeError("sharded queues are popped by the window loop")


class ShardedSimulator(Simulator):
    """A :class:`Simulator` whose queue is partitioned into per-shard
    heaps synchronized by conservative windows.

    Parameters
    ----------
    shards:
        Number of shards (≥ 2; contiguous node blocks).
    nnodes:
        Node count of the machine (shard = ``node * shards // nnodes``).
    lookahead:
        Conservative lookahead in seconds — the minimum delay of any
        cross-shard effect.  The machine model guarantees NIC latency
        ``L``: every inter-node arrival is at least ``L`` after its
        send-side handoff.
    workers:
        Worker processes for parallel execution (1 = sequential).  The
        fork-based protocol lives in :mod:`repro.sim.parallel`;
        sequential and parallel runs execute identical per-shard event
        sequences.
    """

    is_sharded = True

    def __init__(self, shards: int, nnodes: int, lookahead: float,
                 workers: int = 1) -> None:
        if shards < 2:
            raise ValueError(f"need at least 2 shards, got {shards}")
        if shards > nnodes:
            raise ValueError(f"{shards} shards for {nnodes} nodes")
        if lookahead <= 0.0:
            raise ValueError(f"lookahead must be > 0, got {lookahead}")
        super().__init__(tracer=None, queue="calendar")
        self.shards = shards
        self.workers = workers
        self.lookahead = lookahead
        self._shard_of_node = [node * shards // nnodes
                               for node in range(nnodes)]
        self._heaps: List[_ShardQueue] = [_ShardQueue()
                                          for _ in range(shards)]
        self._clocks = [0.0] * shards
        #: shard currently executing (None outside the window loop)
        self._active: Optional[int] = None
        #: ordering key of the currently-dispatched entry — the parent
        #: key of its pushes — plus the running child index and its
        #: increment (see :data:`_RELEASE_STEP`)
        self._key: Tuple = _ROOT
        self._kidx: float = 0
        self._kstep: float = 1
        #: routing for pushes made outside any dispatch (process spawn)
        self._home_shard = 0
        #: shards owned by this process (None = all; set by the
        #: parallel worker protocol)
        self._owned = None
        #: cross-worker entries produced this window (parallel mode)
        self._outbox: list = []
        #: value-interning table for key ``times`` tuples — equal
        #: genealogy timelines become the *same* object, so key
        #: comparisons between node-symmetric genealogies resolve by
        #: identity and :class:`_Bucket` can group by ``id(times)``.
        #: Never cleared mid-run: the table keeping every timeline
        #: alive is what makes ids unique and values never duplicated
        #: (hard-sync ancestry collapse keeps it small anyway).
        self._interned: dict = {}
        #: mint fast path: (id(parent times), now) → interned child
        #: times — skips the value hash for node-symmetric mints
        self._tcache: dict = {}
        #: bound hard-sync coordinator, or None (set by the World)
        self._hard_sync = None
        # Replace the backing queue with the shard router.
        self._queue = _RouterQueue(self)

    # -- routing -------------------------------------------------------
    def shard_of_node(self, node_id: int) -> int:
        """The shard owning ``node_id``."""
        return self._shard_of_node[node_id]

    def set_home(self, node_id: int, rank: int) -> None:
        """Declare where out-of-dispatch pushes belong.

        The world calls this before spawning each rank's process so
        the kick-start entry lands in the rank's shard.  Kick-starts
        are children of the root key with spawn-order indices, like
        the global engine's spawn sequence.
        """
        self._home_shard = self._shard_of_node[node_id]

    def _next_key(self) -> tuple:
        """Mint the ordering key for a push made right now."""
        idx = self._kidx
        self._kidx = idx + self._kstep
        times, idxs = self._key
        ck = (id(times), self.now)
        child = self._tcache.get(ck)
        if child is None:
            t = (self.now,) + times
            child = self._interned.setdefault(t, t)
            self._tcache[ck] = child
        return (child, idxs + (idx,))

    def _route(self, when: float, item: Any) -> None:
        """Push ``item`` into the currently-executing shard.

        The hottest path in the sharded kernel — :meth:`_next_key` is
        inlined here (one mint per scheduled event).
        """
        shard = self._active
        if shard is None:
            shard = self._home_shard
        idx = self._kidx
        self._kidx = idx + self._kstep
        times, idxs = self._key
        ck = (id(times), self.now)
        child = self._tcache.get(ck)
        if child is None:
            t = (self.now,) + times
            child = self._interned.setdefault(t, t)
            self._tcache[ck] = child
        self._heaps[shard].push(when, (child, idxs + (idx,)), item)

    def _push_entry(self, shard: int, entry: tuple) -> None:
        """Insert a fully-keyed entry (cross-worker delivery path).

        Pickling broke the ``times`` interning — restore it so the
        imported key compares by identity against local mints.
        """
        when, (times, idxs), item = entry
        times = self._interned.setdefault(times, times)
        self._heaps[shard].push(when, (times, idxs), item)

    def call_at_node(self, node_id: int, when: float, fn) -> None:
        """Run ``fn`` at ``when`` under the shard owning ``node_id``.

        The cross-shard scheduling primitive: transports use it for
        message arrivals so destination-side state mutates under the
        destination's queue.  ``when`` must be at least ``lookahead``
        in the future when the destination is remote — the
        conservative-window contract.
        """
        dst = self._shard_of_node[node_id]
        src = self._active
        if src is None:
            src = self._home_shard
        if dst == src:
            self._route(when, fn)
            return
        key = self._next_key()
        owned = self._owned
        if owned is not None and dst not in owned:
            self._outbox.append((dst, (when, key, fn)))
        else:
            self._heaps[dst].push(when, key, fn)

    # Direct-routing overrides: same contracts as the base class, but
    # skip the global-seq bump and the ``_queue`` indirection — the
    # recursive key minted in :meth:`_route` is the ordering.
    def _push(self, event: Event, delay: float = 0.0) -> None:
        self._route(self.now + delay, event)

    def call_at(self, when: float, fn) -> None:
        if when < self.now:
            raise ValueError(f"call_at({when}) is in the past (now={self.now})")
        self._route(when, fn)

    def call_in(self, delay: float, fn) -> None:
        if delay < 0.0:
            raise ValueError(f"negative delay {delay!r}")
        self._route(self.now + delay, fn)

    def event_at(self, when: float, value: Any = None) -> Event:
        if when < self.now:
            raise ValueError(f"event_at({when}) is in the past (now={self.now})")
        ev = Event(self)
        ev._ok = True
        ev._value = value
        self._route(when, ev)
        return ev

    # -- inspection ----------------------------------------------------
    def _min_time(self, owned_only: bool = False) -> float:
        shards = (self._owned if owned_only and self._owned is not None
                  else range(self.shards))
        m = float("inf")
        for s in shards:
            t = self._heaps[s].peek_time()
            if t < m:
                m = t
        return m

    def peek(self) -> float:
        return self._min_time()

    # -- execution -----------------------------------------------------
    def _dispatch_item(self, item: Any) -> None:
        self._event_count += 1
        cls = item.__class__
        if cls is tuple:
            fn, arg = item
            fn(arg)
        elif isinstance(item, Event):
            callbacks, item.callbacks = item.callbacks, None
            for callback in callbacks:
                callback(item)
            if not item.ok and not callbacks:
                raise item.value
        else:
            item()

    def run_shard(self, shard: int, horizon: float,
                  until: Optional[float] = None) -> None:
        """Execute ``shard``'s entries with ``when < horizon``.

        Public for the parallel worker protocol; the sequential loop
        uses it too, so both modes execute identical sequences.
        """
        queue = self._heaps[shard]
        if not queue:
            return
        self._active = shard
        root_kidx = self._kidx
        self.now = self._clocks[shard]
        dispatch = self._dispatch_item
        try:
            if until is None:
                while True:
                    entry = queue.pop_before(horizon)
                    if entry is None:
                        break
                    when, key, item = entry
                    self.now = when
                    self._key = key
                    self._kidx = 0
                    self._kstep = 1
                    dispatch(item)
            else:
                while True:
                    when = queue.peek_time()
                    if when >= horizon or when > until:
                        break
                    when, key, item = queue.pop()
                    self.now = when
                    self._key = key
                    self._kidx = 0
                    self._kstep = 1
                    dispatch(item)
        finally:
            self._clocks[shard] = self.now
            self._active = None
            self._key = _ROOT
            self._kidx = root_kidx
            self._kstep = 1

    def run(self, until: Optional[float] = None) -> None:
        """Run windows until every shard's queue drains (or ``until``).

        Always sequential — the fork-based multi-worker protocol is
        driven from :meth:`World.run <repro.runtime.world.World.run>`
        via :mod:`repro.sim.parallel` (it needs world state to ship
        results between processes); both execute identical per-shard
        event sequences.
        """
        tracer = host.active()
        if tracer is not None:
            return self._run_traced(tracer, until)
        L = self.lookahead
        nshards = self.shards
        while True:
            m = self._min_time()
            if m == float("inf") or (until is not None and m > until):
                break
            horizon = m + L
            for shard in range(nshards):
                self.run_shard(shard, horizon, until=until)
        self.now = until if until is not None else max(self._clocks)

    def _run_traced(self, tracer, until: Optional[float] = None) -> None:
        """:meth:`run` with host wall-clock spans per window and per
        shard advance.  Same event sequence — telemetry only reads the
        wall clock around the identical :meth:`run_shard` calls."""
        L = self.lookahead
        nshards = self.shards
        clock = tracer.clock
        while True:
            m = self._min_time()
            if m == float("inf") or (until is not None and m > until):
                break
            horizon = m + L
            w0 = clock()
            for shard in range(nshards):
                if not self._heaps[shard]:
                    continue
                t0 = clock()
                self.run_shard(shard, horizon, until=until)
                tracer.span_at("shard.advance", t0, clock(),
                               track=f"shard{shard}", cat="engine")
            tracer.span_at("engine.window", w0, clock(),
                           track="engine", cat="engine")
            tracer.count("engine_windows_total")
        self.now = until if until is not None else max(self._clocks)

    def step(self) -> None:  # pragma: no cover - debugging aid
        """Process the globally-earliest entry (single-step probe)."""
        m = self._min_time()
        if m == float("inf"):
            raise IndexError("step() on empty sharded queues")
        for shard in range(self.shards):
            heap = self._heaps[shard]
            if heap and heap.peek_time() == m:
                when, key, item = heap.pop()
                self._active = shard
                root_kidx = self._kidx
                self.now = when
                self._key = key
                self._kidx = 0
                self._kstep = 1
                try:
                    self._dispatch_item(item)
                finally:
                    self._clocks[shard] = self.now
                    self._active = None
                    self._key = _ROOT
                    self._kidx = root_kidx
                    self._kstep = 1
                return


class _Release:
    """Dispatchable release callback for one hard-sync waiter.

    Waiter ``p``'s entry carries the release key with the arrival
    position appended (``(times_r, idxs_r + (p,))``) — it sorts
    against third-party events exactly like the reference engine's
    single release event (only the release genealogy mints that
    timeline, so comparisons never reach the appended element) and
    against its generation's siblings by global arrival position.
    The dispatch then runs the waiter's callbacks under the *shared*
    parent key with child indices ``p + i * _RELEASE_STEP``: every
    released rank's pushes are siblings ordered by (arrival position,
    push order), exactly the reference engine's callback ordering.
    """

    __slots__ = ("sim", "key", "p", "ev")

    def __init__(self, sim: ShardedSimulator, key: tuple, p: int,
                 ev: Event) -> None:
        self.sim = sim
        self.key = key
        self.p = p
        self.ev = ev

    def __call__(self) -> None:
        sim = self.sim
        sim._key = self.key
        sim._kidx = float(self.p)
        sim._kstep = _RELEASE_STEP
        ev = self.ev
        callbacks, ev.callbacks = ev.callbacks, None
        for callback in callbacks:
            callback(ev)


class ShardedHardSync:
    """Zero-cost global alignment barrier for sharded worlds.

    Drop-in for the world's ``hard_sync_barrier`` (same ``arrive()``
    interface as :class:`~repro.pip.sync.NodeBarrier` with zero flag
    latency).  Release mirrors the reference barrier exactly: the
    last arrival schedules a zero-delay release whose callbacks run
    in arrival order.  Here each waiter gets its own release entry in
    its own shard; all entries of a generation carry the key the
    reference release event would have, extended with the waiter's
    arrival position (so they sort identically against third-party
    events and in arrival order among themselves), and
    :class:`_Release` hands every waiter the shared parent key with
    arrival-ordered child indices (so post-barrier pushes sort
    identically too).  Arrival order
    itself is the heap order ``(time, key)`` of the arriving
    dispatches — globally well defined without any shared counter.

    In parallel-worker mode arrivals are aggregated by the coordinator
    between windows (see :mod:`repro.sim.parallel`); release keys and
    positions are identical to sequential mode.
    """

    def __init__(self, sim: ShardedSimulator, nranks: int) -> None:
        self.sim = sim
        self.nranks = nranks
        #: (arrive time, dispatch key, consumed child index, shard,
        #: event) per waiter, in local arrival order
        self._waiters: list = []
        sim._hard_sync = self

    def arrive(self) -> Event:
        sim = self.sim
        shard = sim._active
        if shard is None:
            shard = sim._home_shard
        ev = Event(sim)
        # Consume one child index: the reference barrier pushes its
        # zero-delay release timeout right here, and later pushes of
        # this same dispatch must sort after it.
        k = sim._kidx
        sim._kidx = k + sim._kstep
        self._waiters.append((sim.now, sim._key, k, shard, ev))
        if len(self._waiters) == self.nranks and sim._owned is None:
            self._open()
        return ev

    @property
    def pending(self) -> int:
        """Arrivals so far in the current generation (worker probe)."""
        return len(self._waiters)

    def waiter_meta(self) -> list:
        """(time, key, index) per local waiter — coordinator input."""
        return [(t, key, k) for t, key, k, _, _ in self._waiters]

    @staticmethod
    def release_key(meta: list) -> tuple:
        """The shared release key for one generation's waiter metadata.

        Mirrors the reference engine: the *last* arrival (max by
        ``(time, key)``) pushes a zero-delay timeout consuming child
        index ``k``; the timeout's dispatch then pushes the release
        event as its first child.
        """
        t_last, key_last, k_last = max(meta, key=lambda w: (w[0], w[1]))
        times, idxs = key_last
        # timeout = child k of the last arrival; release = its child 0
        return ((t_last, t_last) + times, idxs + (k_last, 0))

    def _open(self) -> None:
        """Sequential-mode release (called from the last arrival)."""
        waiters, self._waiters = self._waiters, []
        meta = [(t, key, k) for t, key, k, _, _ in waiters]
        key_r = self.release_key(meta)
        tmax = key_r[0][0]
        order = sorted(range(len(waiters)),
                       key=lambda i: (waiters[i][0], waiters[i][1]))
        positions = [0] * len(waiters)
        for p, i in enumerate(order):
            positions[i] = p
        self._release_local(tmax, key_r, positions, waiters)

    def release_all(self, tmax: float, key_r: tuple,
                    positions: list) -> None:
        """Coordinator-driven release of this worker's waiters."""
        waiters, self._waiters = self._waiters, []
        self._release_local(tmax, key_r, positions, waiters)

    def _release_local(self, tmax: float, key_r: tuple, positions: list,
                       waiters: list) -> None:
        sim = self.sim
        times, idxs = key_r
        times = sim._interned.setdefault(times, times)
        key_r = (times, idxs)
        for (t, key, k, shard, ev), p in zip(waiters, positions):
            ev._ok = True
            ev._value = None
            sim._heaps[shard].push(tmax, (times, idxs + (p,)),
                                   _Release(sim, key_r, p, ev))
