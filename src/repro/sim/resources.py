"""Capacity-limited resources.

A :class:`Resource` models a facility with ``capacity`` concurrent slots
(e.g. a NIC injection port, a memory-copy engine).  Processes ``yield
resource.request()`` to acquire a slot and must call ``release`` when
done; :meth:`use` packages the common acquire → hold-for-duration →
release pattern.

Grant order is strict FIFO, which keeps simulations deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque

from .events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator


class Request(Event):
    """The event granted to a process when it gets a resource slot."""

    __slots__ = ("resource",)

    def __init__(self, sim: "Simulator", resource: "Resource") -> None:
        super().__init__(sim)
        self.resource = resource


class Resource:
    """``capacity`` interchangeable slots, granted FIFO."""

    #: optional :class:`~repro.obs.resources.ResourceTimeline` — when a
    #: monitor attaches one, every occupancy transition is sampled onto
    #: it.  Class-level None keeps the unmonitored path to one check.
    timeline = None

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiting: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Slots currently held."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        req = Request(self.sim, self)
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed()
        else:
            self._waiting.append(req)
        tl = self.timeline
        if tl is not None:
            tl.sample_queue(self.sim.now, len(self._waiting),
                            in_use=self._in_use)
        return req

    def release(self) -> None:
        """Return a slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        if self._waiting:
            # Hand the slot straight to the next waiter: occupancy is
            # unchanged.
            self._waiting.popleft().succeed()
        else:
            self._in_use -= 1
        tl = self.timeline
        if tl is not None:
            tl.sample_queue(self.sim.now, len(self._waiting),
                            in_use=self._in_use)

    def use(self, duration: float):
        """Generator: hold one slot for ``duration`` seconds.

        Usage inside a process: ``yield from resource.use(t)``.
        """
        yield self.request()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()


class RateLimiter:
    """Serialises work through a pipe with a fixed service rate.

    Unlike :class:`Resource`, jobs do not hold a slot for their own
    duration; instead the limiter tracks the time at which the pipe next
    becomes free and each job of length ``duration`` occupies the pipe
    ``[start, start + duration)`` where ``start = max(now, next_free)``.
    This models a NIC's injection pipeline (LogGP's ``g``/``G`` terms):
    submission is instant but throughput is bounded.

    :meth:`occupy` returns an event that fires when the job *finishes*
    transiting the pipe.
    """

    #: optional :class:`~repro.obs.resources.ResourceTimeline` — when a
    #: monitor attaches one, every reservation records its busy interval
    #: and a backlog sample.  Class-level None keeps the unmonitored
    #: reserve() to one extra attribute check.
    timeline = None

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._next_free = 0.0
        self._busy_time = 0.0

    @property
    def next_free(self) -> float:
        """Earliest time a new job could start service."""
        return max(self._next_free, self.sim.now)

    @property
    def busy_time(self) -> float:
        """Total time the pipe has spent serving jobs (utilisation probe)."""
        return self._busy_time

    def reserve(self, duration: float, lead_delay: float = 0.0) -> float:
        """Book ``duration`` seconds of pipe time; returns the
        *absolute* completion time.

        Because grant order is strictly FIFO, the completion time is
        fully determined at call time — callers can therefore fold a
        reservation into a single scheduled event instead of waiting
        on a separate one.
        """
        if duration < 0 or lead_delay < 0:
            raise ValueError("durations/delays must be >= 0")
        start = self.sim.now + lead_delay
        free = self._next_free
        if free > start:
            start = free
        finish = start + duration
        self._next_free = finish
        self._busy_time += duration
        tl = self.timeline
        if tl is not None:
            # Both engine paths funnel every pipe reservation through
            # here with identical timestamps, so the recorded timeline
            # is byte-identical between them.
            tl.record_busy(start, finish)
            tl.sample_queue(self.sim.now, start - self.sim.now - lead_delay)
        return finish

    def occupy(self, duration: float, lead_delay: float = 0.0,
               tail_delay: float = 0.0) -> Event:
        """Enqueue a job needing ``duration`` seconds of pipe time.

        ``lead_delay`` delays the earliest possible service start (e.g.
        a rendezvous handshake that must finish before injection);
        ``tail_delay`` shifts the completion event past the end of
        service (e.g. wire latency after the message left the pipe).
        Both exist so callers can model a three-stage span with a
        single scheduled event.
        """
        if tail_delay < 0:
            raise ValueError("durations/delays must be >= 0")
        finish = self.reserve(duration, lead_delay)
        # Absolute-time scheduling: the fast path computes this same
        # completion instant as `reserve(...) + tail`, so going through
        # a relative timeout here (now + (finish + tail - now)) would
        # put the two paths a ULP apart.
        return self.sim.event_at(finish + tail_delay)
