"""Candidate → runnable algorithm construction.

Maps :class:`~repro.tuner.space.Candidate` family names onto the
repo's algorithm inventory (``repro.core`` multi-object schedules,
``repro.collectives`` flat baselines) and contributes the one
algorithm the stock inventory lacks: the **generalised W-sender
multi-object Bruck allgather**, where only ``W ≤ P`` local ranks drive
the inter-node schedule (radix ``B_k = W + 1``) while the remaining
ranks only stage and distribute.  ``W = P`` reproduces the paper's
``B_k = P + 1`` schedule exactly — byte- and time-identical to
:func:`repro.core.mcoll_allgather` — and the ladder below it is the
radix/lane-count trade-off Bienz et al. and Träff show is
topology-dependent, i.e. precisely what the tuner searches.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..collectives import (
    allgather_bruck,
    allgather_recursive_doubling,
    allgather_ring,
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    alltoall_bruck,
    alltoall_pairwise,
    barrier_dissemination,
    bcast_binomial,
    bcast_ring_pipeline,
    gather_binomial,
    gather_linear,
    reduce_binomial,
    reduce_scatter_recursive_halving,
    reduce_scatter_reduce_then_scatter,
    scatter_binomial,
    scatter_linear,
)
from ..collectives.base import TAG_MCOLL
from ..core import (
    mcoll_allgather,
    mcoll_allgather_large,
    mcoll_allreduce,
    mcoll_allreduce_rsag,
    mcoll_alltoall,
    mcoll_barrier,
    mcoll_bcast,
    mcoll_gather,
    mcoll_reduce,
    mcoll_reduce_scatter,
    mcoll_scatter,
)
from ..core.common import (
    chunked_copy,
    close_stage,
    geometry,
    open_stage,
    require_pip_world,
    straight_copy,
)
from ..core.multiobject import bruck_schedule, dest_node, source_node, total_rounds
from ..mpilibs.base import is_pow2
from .space import BASE_FAMILY, Candidate, ConfigError

_STAGE_KEY = "tuner.allgather.stage"


def mcoll_allgather_senders(senders: int) -> Callable:
    """Multi-object Bruck allgather with ``W = senders`` NIC lanes.

    Local ranks ``0 .. W-1`` carry digits ``1 .. W`` of a
    radix-``(W + 1)`` positional schedule; ranks ``W .. P-1`` stage
    their block, keep the round barriers honest, and join the final
    distribution copy.  The wire moves the same ``N − 1`` node-chunks
    regardless of ``W`` — the knob trades rounds (``log_{W+1} N``)
    against per-round concurrency, which is the whole point of tuning
    it per machine.
    """
    if senders < 1:
        raise ConfigError(f"senders must be >= 1, got {senders}")

    def algorithm(ctx, sendview, recvview, comm=None):
        comm = require_pip_world(ctx, comm)
        n_nodes, ppn, node, rl = geometry(ctx)
        w = min(senders, ppn)
        cb = sendview.nbytes
        if recvview.nbytes != cb * comm.size:
            raise ValueError(
                f"allgather recvbuf holds {recvview.nbytes} B, expected "
                f"{comm.size} × {cb} B"
            )
        chunk = cb * ppn

        stage = yield from open_stage(ctx, _STAGE_KEY, chunk * n_nodes)
        yield from straight_copy(ctx, sendview, stage.view(rl * cb, cb))
        yield from ctx.node_barrier()

        last_round = -1
        schedule = bruck_schedule(n_nodes, w, rl) if rl < w else []
        for t in schedule:
            last_round = t.round_no
            dst = dest_node(node, t.dst_node_offset, n_nodes)
            src = source_node(node, t.src_node_offset, n_nodes)
            dst_rank = comm.to_comm(ctx.cluster.global_rank(dst, rl))
            src_rank = comm.to_comm(ctx.cluster.global_rank(src, rl))
            with ctx.span("round", cat="round", idx=t.round_no,
                          algorithm=f"mcoll_bruck_w{w}", chunks=t.chunks):
                yield from ctx.sendrecv(
                    stage.view(0, t.chunks * chunk), dst_rank,
                    TAG_MCOLL + t.round_no,
                    stage.view(t.recv_chunk_index * chunk, t.chunks * chunk),
                    src_rank, TAG_MCOLL + t.round_no,
                    comm=comm,
                )
                yield from ctx.node_barrier()

        # Idle digits (and every rank past W) still arrive at each
        # round barrier — node_barrier counts arrivals.
        for _ in range(total_rounds(n_nodes, w) - (last_round + 1)):
            yield from ctx.node_barrier()

        yield from chunked_copy(ctx, stage, recvview, n_nodes, chunk,
                                shift=node)
        yield from close_stage(ctx, _STAGE_KEY)

    algorithm.__name__ = f"mcoll_bruck_w{senders}"
    return algorithm


def _mcoll_allreduce_auto() -> Callable:
    """PiP-MColl's runtime-guarded allreduce pick (radix needs a
    power-of-two node count, reduce-scatter+allgather needs count
    divisibility; otherwise recursive doubling)."""

    def pick(ctx, send, recv, dtype, op, comm=None):
        size = (comm if comm is not None else ctx.comm_world).size
        if is_pow2(ctx.cluster.nodes):
            yield from mcoll_allreduce(ctx, send, recv, dtype, op, comm=comm)
        elif not send.nbytes % (size * dtype.size):
            yield from mcoll_allreduce_rsag(ctx, send, recv, dtype, op,
                                            comm=comm)
        else:
            yield from allreduce_recursive_doubling(ctx, send, recv, dtype,
                                                    op, comm=comm)

    pick.__name__ = "mcoll_allreduce_auto"
    return pick


def _ring_pipeline(segment: int) -> Callable:
    def algorithm(ctx, view, root=0, comm=None):
        yield from bcast_ring_pipeline(ctx, view, root=root, comm=comm,
                                       segment=segment)

    algorithm.__name__ = f"bcast_ring_pipeline_s{segment}"
    return algorithm


#: (collective, family) → builder(cand) -> algorithm callable
_BUILDERS: Dict[tuple, Callable[[Candidate], Callable]] = {
    ("allgather", "mcoll_bruck"):
        lambda c: mcoll_allgather_senders(c.senders),
    ("allgather", "mcoll_ring"): lambda c: mcoll_allgather_large,
    ("allgather", "bruck"): lambda c: allgather_bruck,
    ("allgather", "recursive_doubling"):
        lambda c: allgather_recursive_doubling,
    ("allgather", "ring"): lambda c: allgather_ring,
    ("alltoall", "mcoll"): lambda c: mcoll_alltoall,
    ("alltoall", "bruck"): lambda c: alltoall_bruck,
    ("alltoall", "pairwise"): lambda c: alltoall_pairwise,
    ("bcast", "mcoll"): lambda c: mcoll_bcast,
    ("bcast", "binomial"): lambda c: bcast_binomial,
    ("bcast", "ring_pipeline"): lambda c: _ring_pipeline(c.segment),
    ("allreduce", "mcoll_auto"): lambda c: _mcoll_allreduce_auto(),
    ("allreduce", "recursive_doubling"):
        lambda c: allreduce_recursive_doubling,
    ("allreduce", "rabenseifner"): lambda c: allreduce_rabenseifner,
    ("reduce", "mcoll"): lambda c: mcoll_reduce,
    ("reduce", "binomial"): lambda c: reduce_binomial,
    ("gather", "mcoll"): lambda c: mcoll_gather,
    ("gather", "binomial"): lambda c: gather_binomial,
    ("gather", "linear"): lambda c: gather_linear,
    ("scatter", "mcoll"): lambda c: mcoll_scatter,
    ("scatter", "binomial"): lambda c: scatter_binomial,
    ("scatter", "linear"): lambda c: scatter_linear,
    ("reduce_scatter", "mcoll"): lambda c: mcoll_reduce_scatter,
    ("reduce_scatter", "recursive_halving"):
        lambda c: reduce_scatter_recursive_halving,
    ("reduce_scatter", "reduce_then_scatter"):
        lambda c: reduce_scatter_reduce_then_scatter,
    ("barrier", "mcoll"): lambda c: mcoll_barrier,
    ("barrier", "dissemination"): lambda c: barrier_dissemination,
}


def build_algorithm(cand: Candidate, collective: str) -> Optional[Callable]:
    """The runnable algorithm for ``cand``, or ``None`` for the
    ``"base"`` family (meaning: delegate to the base library)."""
    if cand.algorithm == BASE_FAMILY:
        return None
    builder = _BUILDERS.get((collective, cand.algorithm))
    if builder is None:
        raise ConfigError(
            f"no builder for {cand.algorithm!r} on {collective!r}"
        )
    return builder(cand)
