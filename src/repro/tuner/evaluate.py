"""Candidate evaluation: one (cell, candidate) → measured latency.

:class:`CandidateLibrary` is a throwaway :class:`~repro.mpilibs.base.
MpiLibrary` that behaves exactly like the base library except for the
one collective being tuned, where it runs the candidate's algorithm.
:func:`evaluate_task` is a module-level, picklable function so the
driver can fan tasks out to ``ProcessPoolExecutor`` workers; it builds
the machine (applying a candidate ``eager_limit`` override via
``MachineParams.scaled``), runs the standard bench harness for one
warmup + one measured iteration (the simulator is deterministic, so
one iteration *is* the answer), and reports ``{"latency_us": ...}`` or
``{"latency_us": None, "error": ...}`` — candidate failures are data,
not crashes.

A per-candidate wall-clock timeout uses ``signal.setitimer`` (POSIX),
which works both inline and inside fork-started workers; a candidate
that simulates too long is recorded as timed out and the search moves
on.
"""

from __future__ import annotations

import signal
from dataclasses import replace
from typing import Callable, Dict, Optional

from ..machine import MachineParams, preset
from ..mpilibs.base import MpiLibrary
from ..transport import make_transport
from .algorithms import build_algorithm
from .space import Candidate, Cell, ConfigError, validate_candidate


class EvalTimeout(Exception):
    """A candidate exceeded its wall-clock budget."""


def base_supports_peer_views(base: MpiLibrary) -> bool:
    """Whether the base library's intra-node transport is PiP-like."""
    return make_transport(base.profile.intra).supports_peer_views


class CandidateLibrary(MpiLibrary):
    """The base library with one collective's pick overridden."""

    def __init__(self, base: MpiLibrary, collective: str,
                 algorithm: Optional[Callable]):
        self._base = base
        self._collective = collective
        self._algorithm = algorithm  # None → pure base delegation
        self.profile = base.profile

    def algorithm(self, collective: str, nbytes: int,
                  world_size: int) -> Callable:
        if collective == self._collective and self._algorithm is not None:
            return self._algorithm
        return self._base.algorithm(collective, nbytes, world_size)

    def subcomm_algorithm(self, collective: str, nbytes: int,
                          comm_size: int) -> Callable:
        return self._base.subcomm_algorithm(collective, nbytes, comm_size)


def machine_for(preset_name: str, nodes: int, ppn: int,
                eager_limit: Optional[int] = None) -> MachineParams:
    """The cell's machine, with an optional eager-limit override."""
    if preset_name == "single_node":
        if nodes != 1:
            raise ConfigError("single_node preset needs nodes=1")
        params = preset(preset_name, ppn=ppn)
    else:
        params = preset(preset_name, nodes=nodes, ppn=ppn)
    if eager_limit is not None:
        params = params.scaled(nic=replace(params.nic,
                                           eager_limit=eager_limit))
    return params


def candidate_library(base: MpiLibrary, cell: Cell,
                      cand: Candidate) -> CandidateLibrary:
    """Validate ``cand`` for ``cell`` and wrap it as a library."""
    validate_candidate(cand, cell,
                       peer_views=base_supports_peer_views(base))
    algo = build_algorithm(cand, cell.collective)
    return CandidateLibrary(base, cell.collective, algo)


def _candidate_library_id(base: MpiLibrary, cand: Candidate) -> Dict:
    """Content address for a candidate-wrapped library.

    The plain base candidate (every knob ``None``) *is* the base
    library, so it shares cache entries with ordinary benchmarks of
    that library; explicit candidates extend the base fingerprint with
    the full candidate config.
    """
    from ..service import library_fingerprint
    from .space import BASE_FAMILY

    if (cand.algorithm == BASE_FAMILY and cand.senders is None
            and cand.segment is None and cand.eager_limit is None):
        return library_fingerprint(base)
    return {"base": library_fingerprint(base),
            "candidate": cand.as_dict()}


def _evaluate(base: MpiLibrary, cell: Cell, cand: Candidate,
              nodes: int, cache_dir: Optional[str] = None) -> float:
    """Latency (µs) of ``cand`` on ``cell`` at a (possibly reduced
    fidelity) node count ``nodes``.

    With ``cache_dir``, the measurement routes through the sweep
    service's result cache: a cell/candidate pair already measured —
    by an earlier search, another worker, or a plain benchmark run of
    the base library — is a file read, not a simulation.
    """
    lib = candidate_library(base, cell, cand)
    params = machine_for(cell.preset, nodes, cell.ppn,
                         eager_limit=cand.eager_limit)
    if cache_dir is not None:
        from ..service import cached_bench_collective

        point = cached_bench_collective(
            lib, cell.collective, cell.nbytes, params,
            cache=cache_dir, warmup=1, iters=1,
            library_id=_candidate_library_id(base, cand))
        return point.latency_us
    from ..bench.harness import bench_collective

    point = bench_collective(lib, cell.collective, cell.nbytes, params,
                             warmup=1, iters=1)
    return point.latency_us


def evaluate_task(task: Dict) -> Dict:
    """One pickled work unit: ``{cell, candidate, base_library, nodes,
    timeout_s}`` → ``{"latency_us": float|None, "error": str|None}``.

    All failures (invalid config that slipped through, timeout,
    simulator error) come back as data so a bad candidate can never
    take the search down.
    """
    from ..mpilibs import make_library

    cell = Cell.from_dict(task["cell"])
    cand = Candidate.from_dict(task["candidate"])
    base = make_library(task["base_library"])
    nodes = int(task.get("nodes") or cell.nodes)
    timeout_s = task.get("timeout_s")
    cache_dir = task.get("cache_dir")

    def _alarm(signum, frame):
        raise EvalTimeout(f"candidate exceeded {timeout_s}s")

    old_handler = None
    try:
        if timeout_s:
            # Armed inside the try: a tiny budget may fire before the
            # evaluation even starts, and that is still just a timeout.
            old_handler = signal.signal(signal.SIGALRM, _alarm)
            signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
        latency = _evaluate(base, cell, cand, nodes, cache_dir=cache_dir)
        return {"latency_us": latency, "error": None}
    except EvalTimeout as exc:
        return {"latency_us": None, "error": f"timeout: {exc}"}
    except Exception as exc:  # noqa: BLE001 - failures are data here
        return {"latency_us": None,
                "error": f"{type(exc).__name__}: {exc}"}
    finally:
        if old_handler is not None:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)
