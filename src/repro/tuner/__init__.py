"""Empirical autotuning subsystem (S-TUNE).

Searches the multi-object schedule space (algorithm family, Bruck
radix via concurrent-sender count, pipeline segment, eager↔rendezvous
threshold) on the simulator and compiles the winners into a drop-in
:class:`~repro.tuner.compile.TunedLibrary`.  See ``docs/TUNING.md``.
"""

from .compile import TunedLibrary, compile_db
from .db import (
    CellResult,
    SCHEMA_VERSION,
    SchemaError,
    Trial,
    TuneDB,
    diff,
    format_db,
    format_diff,
    git_describe,
    load_db,
    machine_hash,
    merge,
    validate_db,
)
from .driver import MAX_MOVES, STRATEGIES, search
from .evaluate import CandidateLibrary, candidate_library, machine_for
from .space import (
    BASE_FAMILY,
    Candidate,
    Cell,
    ConfigError,
    FAMILY_POOLS,
    SearchSpace,
    default_senders,
    make_cells,
    validate_candidate,
)

__all__ = [
    "BASE_FAMILY",
    "Candidate",
    "CandidateLibrary",
    "Cell",
    "CellResult",
    "ConfigError",
    "FAMILY_POOLS",
    "MAX_MOVES",
    "SCHEMA_VERSION",
    "STRATEGIES",
    "SchemaError",
    "SearchSpace",
    "Trial",
    "TuneDB",
    "TunedLibrary",
    "candidate_library",
    "compile_db",
    "default_senders",
    "diff",
    "format_db",
    "format_diff",
    "git_describe",
    "load_db",
    "machine_for",
    "machine_hash",
    "make_cells",
    "merge",
    "search",
    "validate_db",
]
