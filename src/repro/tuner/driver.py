"""Search driver: strategies, worker fan-out, checkpointing.

Evaluates candidate configurations cell by cell and assembles a
:class:`~repro.tuner.db.TuneDB`.  Three strategies:

* ``exhaustive`` — every valid candidate at full fidelity; the ground
  truth the cheaper strategies are tested against.
* ``halving`` — successive halving over *node-count fidelity rungs*
  (``nodes/4 → nodes/2 → nodes``): all candidates race at the cheap
  rung, the better half advances, finalists re-measure at full scale.
  Only full-fidelity measurements enter the DB's trial log.
* ``hill`` — seeded neighbourhood hill-climb: start somewhere in the
  pool, repeatedly move to the best strictly-better one-knob
  neighbour, stop after at most :data:`MAX_MOVES` moves or a local
  optimum.

Every strategy *additionally* measures the ``"base"`` candidate (the
base library's own pick) at full fidelity, so the winner can never be
worse than the library the compiled table falls back to.  Ranking
breaks latency ties toward explicit candidates (then lexicographic
config key), so when the paper's ``B_k = P + 1`` schedule ties the
base library that *is* that schedule, the tuner reports the discovery.

Determinism: the task list is sorted, workers return results by task
identity (not completion order), the only randomness is
``random.Random(f"{seed}:{cell_key}")``, and no wall-clock values are
recorded — same seed ⇒ byte-identical DB.  The checkpoint file maps
``cell_key → candidate_key@fidelity → result`` and is re-read on
restart, so a killed search resumes without re-simulating.
"""

from __future__ import annotations

import json
import math
import random
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..mpilibs import make_library
from ..obs import host
from .db import (
    CellResult,
    SCHEMA_VERSION,
    Trial,
    TuneDB,
    git_describe,
    machine_hash,
)
from .evaluate import base_supports_peer_views, evaluate_task, machine_for
from .space import BASE_FAMILY, Candidate, Cell, ConfigError, SearchSpace

STRATEGIES = ("exhaustive", "halving", "hill")
#: hill-climb move budget per cell
MAX_MOVES = 8
#: candidates kept per halving rung: ceil(n / HALVING_FACTOR)
HALVING_FACTOR = 2

_INF = float("inf")


class _EvalCache:
    """(cell, candidate, fidelity) → result, persisted as a checkpoint."""

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self.path = Path(path) if path else None
        self._data: Dict[str, Dict[str, Dict]] = {}
        if self.path and self.path.exists():
            obj = json.loads(self.path.read_text())
            if obj.get("version") != 1:
                raise ConfigError(
                    f"unsupported checkpoint version in {self.path}"
                )
            self._data = obj.get("evals", {})

    @staticmethod
    def _task_key(cand: Candidate, nodes: int) -> str:
        return f"{cand.key()}@@{nodes}"

    def get(self, cell: Cell, cand: Candidate, nodes: int) -> Optional[Dict]:
        return self._data.get(cell.key(), {}).get(self._task_key(cand, nodes))

    def put(self, cell: Cell, cand: Candidate, nodes: int,
            result: Dict) -> None:
        self._data.setdefault(cell.key(), {})[
            self._task_key(cand, nodes)] = result

    def flush(self) -> None:
        if self.path:
            self.path.write_text(json.dumps(
                {"version": 1, "evals": self._data},
                sort_keys=True, indent=2) + "\n")


class _Evaluator:
    """Batch evaluation with caching and optional worker processes."""

    def __init__(self, base_library: str, cache: _EvalCache,
                 workers: int = 1, timeout_s: Optional[float] = None,
                 result_cache: Optional[str] = None):
        self.base_library = base_library
        self.cache = cache
        self.workers = max(1, int(workers))
        self.timeout_s = timeout_s
        # Sweep-service result cache directory (str: tasks are pickled
        # across ProcessPoolExecutor workers).  Distinct from the
        # checkpoint _EvalCache: the checkpoint is one search's ledger,
        # the result cache is shared with every sweep and search on the
        # machine.
        self.result_cache = result_cache

    def run(self, cell: Cell, cands: Sequence[Candidate],
            nodes: int) -> Dict[Candidate, Dict]:
        """Evaluate ``cands`` for ``cell`` at fidelity ``nodes``."""
        out: Dict[Candidate, Dict] = {}
        todo: List[Candidate] = []
        for cand in cands:
            hit = self.cache.get(cell, cand, nodes)
            if hit is not None:
                out[cand] = hit
            else:
                todo.append(cand)
        if todo:
            tasks = [{
                "cell": cell.as_dict(),
                "candidate": cand.as_dict(),
                "base_library": self.base_library,
                "nodes": nodes,
                "timeout_s": self.timeout_s,
                "cache_dir": self.result_cache,
            } for cand in todo]
            tracer = host.active()
            if self.workers > 1:
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    # map() yields in submission order → deterministic.
                    if tracer is None:
                        results = list(pool.map(evaluate_task, tasks))
                    else:
                        # Pool workers are spawned processes without the
                        # tracer; per-candidate detail can't ship home,
                        # so one batch span covers the fan-out.
                        t0 = tracer.clock()
                        results = list(pool.map(evaluate_task, tasks))
                        tracer.span_at(
                            "tuner.batch", t0, tracer.clock(),
                            track="tuner", cat="tuner",
                            cell=str(cell), candidates=len(tasks),
                            nodes=nodes)
            elif tracer is None:
                results = [evaluate_task(t) for t in tasks]
            else:
                results = []
                for cand, t in zip(todo, tasks):
                    t0 = tracer.clock()
                    results.append(evaluate_task(t))
                    tracer.span_at(
                        "tuner.candidate", t0, tracer.clock(),
                        track="tuner", cat="tuner",
                        cell=str(cell), candidate=str(cand), nodes=nodes)
            for cand, result in zip(todo, results):
                self.cache.put(cell, cand, nodes, result)
                out[cand] = result
            self.cache.flush()
        return out


def _rank_key(cand: Candidate, result: Dict) -> Tuple:
    latency = result.get("latency_us")
    return (
        latency if latency is not None else _INF,
        1 if cand.algorithm == BASE_FAMILY else 0,
        cand.key(),
    )


def _halving_rungs(nodes: int) -> List[int]:
    rungs = sorted({max(2, nodes // 4), max(2, nodes // 2)})
    return [r for r in rungs if r < nodes] + [nodes]


def _search_cell(cell: Cell, pool: Sequence[Candidate], strategy: str,
                 seed: int, evaluator: _Evaluator) -> Dict[Candidate, Dict]:
    """Full-fidelity results for the candidates the strategy explored."""
    base_cands = [c for c in pool if c.algorithm == BASE_FAMILY]
    explicit = [c for c in pool if c.algorithm != BASE_FAMILY]

    if strategy == "exhaustive" or not explicit:
        return evaluator.run(cell, list(pool), cell.nodes)

    if strategy == "halving":
        survivors = list(explicit)
        for rung in _halving_rungs(cell.nodes):
            if rung == cell.nodes:
                break
            results = evaluator.run(cell, survivors, rung)
            ranked = sorted(survivors,
                            key=lambda c: _rank_key(c, results[c]))
            keep = max(1, math.ceil(len(ranked) / HALVING_FACTOR))
            survivors = ranked[:keep]
        return evaluator.run(cell, survivors + base_cands, cell.nodes)

    if strategy == "hill":
        rng = random.Random(f"{seed}:{cell.key()}")
        current = rng.choice(sorted(explicit, key=lambda c: c.key()))
        results = evaluator.run(cell, [current] + base_cands, cell.nodes)
        for _ in range(MAX_MOVES):
            space = SearchSpace.default(cell.collective)
            neigh = [n for n in space.neighbors(current, explicit)
                     if n not in results]
            if not neigh:
                break
            results.update(evaluator.run(cell, neigh, cell.nodes))
            best = min(results, key=lambda c: _rank_key(c, results[c]))
            if best == current:
                break
            current = best
        return results

    raise ConfigError(
        f"unknown strategy {strategy!r}; available: {STRATEGIES}"
    )


def _cell_result(cell: Cell, results: Dict[Candidate, Dict]) -> CellResult:
    ranked = sorted(results, key=lambda c: _rank_key(c, results[c]))
    best = ranked[0]
    best_latency = results[best].get("latency_us")
    if best_latency is None:
        raise ConfigError(
            f"every candidate failed for {cell.key()}: "
            f"{sorted(r.get('error') for r in results.values())}"
        )
    runner = next(
        (c for c in ranked[1:] if results[c].get("latency_us") is not None),
        None,
    )
    baseline = next(
        (results[c]["latency_us"] for c in results
         if c.algorithm == BASE_FAMILY
         and results[c].get("latency_us") is not None),
        None,
    )
    trials = [Trial(config=c.as_dict(),
                    latency_us=results[c].get("latency_us"),
                    error=results[c].get("error"))
              for c in ranked]
    return CellResult(
        collective=cell.collective,
        nbytes=cell.nbytes,
        nodes=cell.nodes,
        ppn=cell.ppn,
        best=best.as_dict(),
        best_latency_us=best_latency,
        runner_up=runner.as_dict() if runner else None,
        margin_us=(results[runner]["latency_us"] - best_latency
                   if runner else None),
        baseline_us=baseline,
        trials=trials,
    )


def search(
    cells: Sequence[Cell],
    base_library: str = "PiP-MColl",
    strategy: str = "exhaustive",
    seed: int = 0,
    workers: int = 1,
    timeout_s: Optional[float] = None,
    space: Optional[SearchSpace] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    eager_choices: Optional[Sequence[Optional[int]]] = None,
    cache=None,
) -> TuneDB:
    """Tune every cell and return the assembled database.

    ``space`` overrides the default per-collective search space (it
    must then match every cell's collective); ``eager_choices`` adds
    eager-limit override rungs to the default spaces.  ``checkpoint``
    names a JSON file evaluations are appended to — re-running the
    same command resumes instead of re-simulating.  ``cache`` (a
    directory or :class:`~repro.service.ResultCache`) additionally
    routes every candidate measurement through the sweep service's
    content-addressed result cache, which is shared *across* searches
    and with plain sweeps: the base library is measured once per cell
    ever, not once per search.
    """
    if strategy not in STRATEGIES:
        raise ConfigError(
            f"unknown strategy {strategy!r}; available: {STRATEGIES}"
        )
    if not cells:
        raise ConfigError("no cells to tune")
    presets = {c.preset for c in cells}
    if len(presets) > 1:
        raise ConfigError(
            f"one DB describes one machine preset; got {sorted(presets)}"
        )
    base = make_library(base_library)
    peer_views = base_supports_peer_views(base)

    result_cache: Optional[str] = None
    if cache is not None:
        from ..service import ResultCache

        result_cache = str(cache.root if isinstance(cache, ResultCache)
                           else cache)
    checkpoint_cache = _EvalCache(checkpoint)
    evaluator = _Evaluator(base.profile.name, checkpoint_cache,
                           workers=workers, timeout_s=timeout_s,
                           result_cache=result_cache)

    results: Dict[str, CellResult] = {}
    for cell in sorted(cells, key=lambda c: c.key()):
        if space is not None:
            cell_space = space
        elif eager_choices is not None:
            cell_space = SearchSpace.default(
                cell.collective, eager_choices=tuple(eager_choices))
        else:
            cell_space = SearchSpace.default(cell.collective)
        pool = cell_space.candidates(cell, peer_views=peer_views)
        if not pool:
            raise ConfigError(f"empty candidate pool for {cell.key()}")
        cell_results = _search_cell(cell, pool, strategy, seed, evaluator)
        results[cell.key()] = _cell_result(cell, cell_results)

    first = sorted(cells, key=lambda c: c.key())[0]
    params = machine_for(first.preset, first.nodes, first.ppn)
    provenance = {
        "machine_hash": machine_hash(params),
        "git": git_describe(),
        "seed": seed,
        "strategy": strategy,
    }
    return TuneDB(
        base_library=base.profile.name,
        preset=first.preset,
        provenance=provenance,
        cells=results,
        schema=SCHEMA_VERSION,
    )
