"""Search-space declaration for the empirical autotuner.

The paper's headline numbers come from *schedule parameters* — the
multi-object Bruck radix ``B_k = P + 1``, how many local ranks drive
the NIC concurrently, the eager↔rendezvous protocol switch, pipeline
segment sizes.  The stock library models hard-code those choices; the
tuner searches them.  This module declares *what* can be searched:

* :class:`Cell` — one grid point to tune: (collective, message size,
  nodes, ppn, machine preset);
* :class:`Candidate` — one point of the knob space: an algorithm
  family plus its family-specific knobs (``senders`` → multi-object
  radix ``senders + 1``, ``segment`` → pipeline piece size,
  ``eager_limit`` → protocol-switch override);
* :class:`SearchSpace` — the per-collective family pool and knob
  ladders, with :meth:`SearchSpace.candidates` enumerating only
  *valid* configurations (``radix ≤ P + 1``, recursive doubling only
  on power-of-two worlds, multi-object families only on peer-view
  transports) and :meth:`SearchSpace.neighbors` defining the
  one-knob-step neighbourhood the hill-climb strategy walks.

Everything here is pure declaration/validation — no simulation.  The
special family name ``"base"`` means "whatever the base library's own
decision table picks"; it is always a candidate, which is what makes
the compiled tables never lose to the library they fall back to.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

#: family name for "the base library's own selection" (always valid)
BASE_FAMILY = "base"


class ConfigError(ValueError):
    """An invalid candidate configuration (violated constraint)."""


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class Cell:
    """One grid point the tuner measures: a collective call shape."""

    collective: str
    nbytes: int
    nodes: int
    ppn: int
    preset: str = "broadwell_opa"

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ConfigError(f"nbytes must be >= 0, got {self.nbytes}")
        if self.nodes < 1 or self.ppn < 1:
            raise ConfigError(
                f"need nodes >= 1 and ppn >= 1, got {self.nodes}x{self.ppn}"
            )

    @property
    def world_size(self) -> int:
        return self.nodes * self.ppn

    def key(self) -> str:
        """Stable cell key (the tuning DB's cell identifier)."""
        return f"{self.collective}/{self.nbytes}B@{self.nodes}x{self.ppn}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "collective": self.collective,
            "nbytes": self.nbytes,
            "nodes": self.nodes,
            "ppn": self.ppn,
            "preset": self.preset,
        }

    @classmethod
    def from_dict(cls, obj: Dict[str, object]) -> "Cell":
        return cls(**{k: obj[k] for k in
                      ("collective", "nbytes", "nodes", "ppn", "preset")
                      if k in obj})


@dataclass(frozen=True)
class Candidate:
    """One knob-space point: an algorithm family + its knob values.

    ``senders`` is the number of local ranks driving the inter-node
    schedule concurrently; for the multi-object Bruck family the radix
    is ``senders + 1`` (the paper's ``B_k = P + 1`` is
    ``senders = ppn``).  ``segment`` is the pipeline piece size in
    bytes.  ``eager_limit`` overrides the NIC's eager↔rendezvous
    switch for the whole run (``None`` keeps the preset's value).
    """

    algorithm: str
    senders: Optional[int] = None
    segment: Optional[int] = None
    eager_limit: Optional[int] = None

    @property
    def radix(self) -> Optional[int]:
        """Multi-object Bruck radix ``B_k = senders + 1`` (or None)."""
        return None if self.senders is None else self.senders + 1

    def key(self) -> str:
        """Canonical sortable identity string."""
        parts = [f"algorithm={self.algorithm}"]
        for name in ("senders", "segment", "eager_limit"):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value}")
        return ",".join(parts)

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"algorithm": self.algorithm}
        for name in ("senders", "segment", "eager_limit"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    @classmethod
    def from_dict(cls, obj: Dict[str, object]) -> "Candidate":
        known = {"algorithm", "senders", "segment", "eager_limit"}
        unknown = set(obj) - known
        if unknown:
            raise ConfigError(f"unknown candidate fields {sorted(unknown)}")
        if "algorithm" not in obj:
            raise ConfigError("candidate needs an 'algorithm' field")
        return cls(**obj)  # type: ignore[arg-type]


#: per-collective family pools (see repro.tuner.algorithms for the
#: callables).  Order is presentation order only; enumeration sorts.
FAMILY_POOLS: Dict[str, Tuple[str, ...]] = {
    "allgather": ("mcoll_bruck", "mcoll_ring", "bruck",
                  "recursive_doubling", "ring"),
    "alltoall": ("mcoll", "bruck", "pairwise"),
    "bcast": ("mcoll", "binomial", "ring_pipeline"),
    "allreduce": ("mcoll_auto", "recursive_doubling", "rabenseifner"),
    "reduce": ("mcoll", "binomial"),
    "gather": ("mcoll", "binomial", "linear"),
    "scatter": ("mcoll", "binomial", "linear"),
    "reduce_scatter": ("mcoll", "recursive_halving", "reduce_then_scatter"),
    "barrier": ("mcoll", "dissemination"),
}

#: families that require a peer-view (PiP-style) intra-node transport
PEER_VIEW_FAMILIES = ("mcoll", "mcoll_bruck", "mcoll_ring", "mcoll_auto")

#: families that require a power-of-two world size
POW2_FAMILIES = ("recursive_doubling", "rabenseifner", "recursive_halving")

#: the family carrying the ``senders`` knob
SENDER_FAMILIES = ("mcoll_bruck",)

#: the family carrying the ``segment`` knob
SEGMENT_FAMILIES = ("ring_pipeline",)


def default_senders(ppn: int) -> Tuple[int, ...]:
    """The coarse lane-count ladder searched by default: powers of two
    up to ``ppn // 2``, plus the paper's all-lanes ``ppn`` (radix
    ``P + 1``).

    Geometric ladders are standard autotuner practice: each rung
    roughly doubles concurrency, so the search probes order-of-
    magnitude trade-offs instead of paying a full simulation per
    near-identical lane count.  Rungs adjacent to ``ppn`` (say 16 of
    18) differ from the top rung only in how the final partial Bruck
    round balances, and can be added explicitly via
    ``senders_choices`` when that margin matters.
    """
    ladder = []
    step = 1
    while step <= ppn // 2:
        ladder.append(step)
        step *= 2
    ladder.append(ppn)
    return tuple(dict.fromkeys(ladder))


#: default pipeline segment ladder (bytes)
DEFAULT_SEGMENTS = (2048, 8192, 32768)


def validate_candidate(cand: Candidate, cell: Cell,
                       peer_views: bool = True) -> None:
    """Raise :class:`ConfigError` if ``cand`` is illegal for ``cell``.

    ``peer_views`` says whether the base library's intra-node
    transport supports direct peer loads/stores (the PiP property the
    multi-object families are built on).
    """
    if cand.algorithm == BASE_FAMILY:
        if cand.senders is not None or cand.segment is not None:
            raise ConfigError("the 'base' family takes no schedule knobs")
        return
    pool = FAMILY_POOLS.get(cell.collective)
    if pool is None:
        raise ConfigError(
            f"no search space for collective {cell.collective!r}; "
            f"tunable: {sorted(FAMILY_POOLS)}"
        )
    if cand.algorithm not in pool:
        raise ConfigError(
            f"{cand.algorithm!r} is not a {cell.collective} family; "
            f"available: {sorted(pool)}"
        )
    if cand.algorithm in PEER_VIEW_FAMILIES and not peer_views:
        raise ConfigError(
            f"{cand.algorithm!r} needs a peer-view (PiP) intra-node "
            "transport; the base library does not provide one"
        )
    if cand.algorithm in POW2_FAMILIES and not _is_pow2(cell.world_size):
        raise ConfigError(
            f"{cand.algorithm!r} needs a power-of-two world, "
            f"got {cell.world_size} ranks"
        )
    if cand.algorithm in SENDER_FAMILIES:
        if cand.senders is None:
            raise ConfigError(f"{cand.algorithm!r} needs the 'senders' knob")
        if not 1 <= cand.senders <= cell.ppn:
            raise ConfigError(
                f"senders={cand.senders} out of range [1, ppn={cell.ppn}] "
                f"(radix {cand.senders + 1} > P + 1 = {cell.ppn + 1})"
                if cand.senders > cell.ppn else
                f"senders={cand.senders} must be >= 1"
            )
    elif cand.senders is not None:
        raise ConfigError(f"{cand.algorithm!r} takes no 'senders' knob")
    if cand.algorithm in SEGMENT_FAMILIES:
        if cand.segment is None:
            raise ConfigError(f"{cand.algorithm!r} needs the 'segment' knob")
        if cand.segment <= 0:
            raise ConfigError(f"segment must be > 0, got {cand.segment}")
    elif cand.segment is not None:
        raise ConfigError(f"{cand.algorithm!r} takes no 'segment' knob")
    if cand.eager_limit is not None and cand.eager_limit < 0:
        raise ConfigError(
            f"eager_limit must be >= 0, got {cand.eager_limit}"
        )


@dataclass(frozen=True)
class SearchSpace:
    """The knob space the driver searches for one collective.

    ``senders_choices=None`` means "derive the default ladder from the
    cell's ppn"; explicit ladders are clipped to the cell's
    constraints at enumeration time (invalid points are dropped, not
    errored — the *declaration* may be broader than any one cell).
    """

    collective: str
    families: Tuple[str, ...] = ()
    senders_choices: Optional[Tuple[int, ...]] = None
    segment_choices: Tuple[int, ...] = DEFAULT_SEGMENTS
    eager_choices: Tuple[Optional[int], ...] = (None,)
    include_base: bool = True

    @classmethod
    def default(cls, collective: str, **overrides) -> "SearchSpace":
        """The stock space for ``collective`` (all known families)."""
        if collective not in FAMILY_POOLS:
            raise ConfigError(
                f"no search space for collective {collective!r}; "
                f"tunable: {sorted(FAMILY_POOLS)}"
            )
        return cls(collective=collective,
                   families=FAMILY_POOLS[collective], **overrides)

    def _senders_for(self, cell: Cell) -> Tuple[int, ...]:
        if self.senders_choices is None:
            return default_senders(cell.ppn)
        return self.senders_choices

    def candidates(self, cell: Cell, peer_views: bool = True
                   ) -> List[Candidate]:
        """Every valid candidate for ``cell``, sorted by key."""
        if cell.collective != self.collective:
            raise ConfigError(
                f"space is for {self.collective!r}, cell is "
                f"{cell.collective!r}"
            )
        raw: List[Candidate] = []
        for family in self.families:
            knobs: List[Candidate] = []
            if family in SENDER_FAMILIES:
                knobs = [Candidate(family, senders=s)
                         for s in self._senders_for(cell)]
            elif family in SEGMENT_FAMILIES:
                knobs = [Candidate(family, segment=s)
                         for s in self.segment_choices]
            else:
                knobs = [Candidate(family)]
            for base in knobs:
                for eager in self.eager_choices:
                    raw.append(replace(base, eager_limit=eager))
        if self.include_base:
            for eager in self.eager_choices:
                raw.append(Candidate(BASE_FAMILY, eager_limit=eager))
        out: List[Candidate] = []
        for cand in raw:
            try:
                validate_candidate(cand, cell, peer_views=peer_views)
            except ConfigError:
                continue
            out.append(cand)
        return sorted(set(out), key=lambda c: c.key())

    def neighbors(self, cand: Candidate, pool: Sequence[Candidate]
                  ) -> List[Candidate]:
        """The hill-climb neighbourhood of ``cand`` within ``pool``:
        same family with exactly one knob changed, or a different
        family at its default knobs."""
        def defaults(other: Candidate) -> bool:
            # "default knobs" = the family's last sender rung (the
            # paper's choice), the middle segment, no eager override.
            if other.eager_limit is not None:
                return False
            if other.senders is not None:
                ladder = [c.senders for c in pool
                          if c.algorithm == other.algorithm
                          and c.senders is not None
                          and c.eager_limit is None]
                return bool(ladder) and other.senders == max(ladder)
            if other.segment is not None:
                ladder = sorted({c.segment for c in pool
                                 if c.algorithm == other.algorithm
                                 and c.segment is not None
                                 and c.eager_limit is None})
                return bool(ladder) and other.segment == ladder[len(ladder) // 2]
            return True

        out = []
        for other in pool:
            if other == cand:
                continue
            if other.algorithm == cand.algorithm:
                diffs = sum(
                    getattr(other, name) != getattr(cand, name)
                    for name in ("senders", "segment", "eager_limit")
                )
                if diffs == 1:
                    out.append(other)
            elif defaults(other):
                out.append(other)
        return sorted(out, key=lambda c: c.key())


def make_cells(collective: str, sizes: Sequence[int], nodes: int, ppn: int,
               preset: str = "broadwell_opa") -> List[Cell]:
    """The (collective × sizes) grid at one geometry, as cells."""
    return [Cell(collective, int(n), nodes, ppn, preset=preset)
            for n in sizes]
