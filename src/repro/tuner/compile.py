"""DB → :class:`TunedLibrary`: a drop-in ``MpiLibrary`` whose decision
tables come from measurements.

The compiled library buckets by message size per (collective,
world_size): a query at ``nbytes`` uses the config of the largest
tuned cell size ``≤ nbytes`` (interval-based bucketing, exactly how
the stock libraries' hand-coded cutoffs work — a tuned winner governs
*from its size up* until the next tuned size takes over).  Queries
below the smallest tuned size, for an untuned collective, or at an
untuned world size fall back to the **base library**, as does any cell
whose winning family is ``"base"``.  If every covered cell agreed on a
non-default ``eager_limit``, :meth:`TunedLibrary.make_world` applies
it to the machine (a protocol threshold is per-machine, not per-call —
mixed winners would be unsatisfiable, so that is an error).

``make_library("tuned:<path>.tunedb.json")`` resolves here, so
``Session``, the bench harness and the differential harness all accept
a tuned library anywhere a library name goes.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..machine import MachineParams
from ..mpilibs.base import LibraryProfile, MpiLibrary
from .algorithms import build_algorithm
from .db import SchemaError, TuneDB, load_db
from .space import BASE_FAMILY, Candidate


class TunedLibrary(MpiLibrary):
    """A library model compiled from a tuning database."""

    def __init__(self, db: TuneDB, base: Optional[MpiLibrary] = None,
                 name: Optional[str] = None):
        from ..mpilibs import make_library

        self.db = db
        self.base = base if base is not None else make_library(db.base_library)
        self.profile = LibraryProfile(
            name=name or f"Tuned[{self.base.profile.name}]",
            intra=self.base.profile.intra,
            call_overhead=self.base.profile.call_overhead,
            description=(
                f"empirically tuned tables over {self.base.profile.name} "
                f"({db.preset}, {len(db.cells)} cells)"
            ),
        )
        # (collective, world_size) → [(nbytes, Candidate)] size-ascending
        self._table: Dict[Tuple[str, int], List[Tuple[int, Candidate]]] = {}
        for result in db.cells.values():
            key = (result.collective, result.nodes * result.ppn)
            bucket = self._table.setdefault(key, [])
            if any(n == result.nbytes for n, _ in bucket):
                raise SchemaError(
                    f"ambiguous DB: two cells for {result.collective} at "
                    f"{result.nbytes} B on {result.nodes * result.ppn} ranks "
                    "(different geometry, same world size)"
                )
            bucket.append((result.nbytes, result.best_candidate))
        for bucket in self._table.values():
            bucket.sort()
        self._eager_limit = self._uniform_eager_limit()

    def _uniform_eager_limit(self) -> Optional[int]:
        limits = {cand.eager_limit
                  for bucket in self._table.values()
                  for _, cand in bucket}
        overrides = limits - {None}
        if not overrides:
            return None
        if len(limits) > 1:
            raise SchemaError(
                f"DB winners disagree on eager_limit ({sorted(limits, key=str)}); "
                "a protocol threshold is machine-wide — re-tune with a "
                "single eager ladder or split the DB"
            )
        return overrides.pop()

    def lookup(self, collective: str, nbytes: int,
               world_size: int) -> Optional[Candidate]:
        """The governing tuned config, or ``None`` → base fallback."""
        bucket = self._table.get((collective, world_size))
        if not bucket:
            return None
        chosen = None
        for size, cand in bucket:  # size-ascending
            if size > nbytes:
                break
            chosen = cand
        return chosen

    def algorithm(self, collective: str, nbytes: int,
                  world_size: int) -> Callable:
        cand = self.lookup(collective, nbytes, world_size)
        if cand is None or cand.algorithm == BASE_FAMILY:
            return self.base.algorithm(collective, nbytes, world_size)
        return build_algorithm(cand, collective)

    def subcomm_algorithm(self, collective: str, nbytes: int,
                          comm_size: int) -> Callable:
        return self.base.subcomm_algorithm(collective, nbytes, comm_size)

    def make_world(self, params: MachineParams, functional: bool = True,
                   **world_kwargs):
        if self._eager_limit is not None:
            params = params.scaled(
                nic=replace(params.nic, eager_limit=self._eager_limit))
        return super().make_world(params, functional=functional,
                                  **world_kwargs)

    def coverage(self) -> List[str]:
        """Sorted cell keys this library's tables cover (docs/CLI)."""
        return sorted(self.db.cells)


def compile_db(source: Union[str, Path, TuneDB],
               base: Optional[MpiLibrary] = None,
               name: Optional[str] = None) -> TunedLibrary:
    """Compile a DB (path or object) into a :class:`TunedLibrary`."""
    db = source if isinstance(source, TuneDB) else load_db(source)
    return TunedLibrary(db, base=base, name=name)
