"""Schema-versioned tuning database (``*.tunedb.json``).

One DB = one (base library, machine preset) pair's measured grid: per
cell the winning config, its latency, the runner-up margin (how much
headroom the winner has — small margins mean the cell is
re-tune-sensitive), the base library's own latency, and the full trial
log.  Provenance records *which* machine the numbers describe (a hash
of the preset's cost parameters — if the preset changes, the DB is
stale) and which source tree searched it (``git describe``).

Determinism contract: serialisation is ``sort_keys=True`` with no
timestamps anywhere, so the same search under the same seed produces a
**byte-identical** file (asserted by tests and the acceptance
criteria).  :func:`merge` and :func:`diff` are the multi-run tooling:
merge unions two grids (same base + preset required; on conflict the
lower measured latency wins), diff explains what changed between two
DBs cell by cell.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..machine import MachineParams
from .space import Candidate, Cell

SCHEMA_VERSION = 1


class SchemaError(ValueError):
    """A tuning DB that does not match the schema."""


def machine_hash(params: MachineParams) -> str:
    """Short stable hash of a machine's *cost* parameters (geometry
    excluded — the grid varies it; the cost model must not drift)."""
    payload = {
        "nic": asdict(params.nic),
        "memory": asdict(params.memory),
        "cpu": asdict(params.cpu),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def git_describe(root: Optional[Union[str, Path]] = None) -> str:
    """``git describe --always --dirty`` or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=str(root) if root else None,
            capture_output=True, text=True, timeout=10, check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() or "unknown"


@dataclass
class Trial:
    """One evaluated (candidate, full-fidelity) measurement."""

    config: Dict[str, object]
    latency_us: Optional[float]
    error: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"config": dict(self.config),
                                  "latency_us": self.latency_us}
        if self.error is not None:
            out["error"] = self.error
        return out

    @classmethod
    def from_dict(cls, obj: Dict) -> "Trial":
        return cls(config=dict(obj["config"]),
                   latency_us=obj.get("latency_us"),
                   error=obj.get("error"))


@dataclass
class CellResult:
    """The tuned outcome for one grid cell."""

    collective: str
    nbytes: int
    nodes: int
    ppn: int
    best: Dict[str, object]  # winning candidate config
    best_latency_us: float
    runner_up: Optional[Dict[str, object]]
    margin_us: Optional[float]  # runner-up latency − best latency
    baseline_us: Optional[float]  # the base library's own pick
    trials: List[Trial] = field(default_factory=list)

    @property
    def cell(self) -> Cell:
        return Cell(self.collective, self.nbytes, self.nodes, self.ppn)

    @property
    def best_candidate(self) -> Candidate:
        return Candidate.from_dict(self.best)

    def as_dict(self) -> Dict[str, object]:
        return {
            "collective": self.collective,
            "nbytes": self.nbytes,
            "nodes": self.nodes,
            "ppn": self.ppn,
            "best": dict(self.best),
            "best_latency_us": self.best_latency_us,
            "runner_up": dict(self.runner_up) if self.runner_up else None,
            "margin_us": self.margin_us,
            "baseline_us": self.baseline_us,
            "trials": [t.as_dict() for t in self.trials],
        }

    @classmethod
    def from_dict(cls, obj: Dict) -> "CellResult":
        try:
            return cls(
                collective=obj["collective"],
                nbytes=int(obj["nbytes"]),
                nodes=int(obj["nodes"]),
                ppn=int(obj["ppn"]),
                best=dict(obj["best"]),
                best_latency_us=float(obj["best_latency_us"]),
                runner_up=dict(obj["runner_up"]) if obj.get("runner_up") else None,
                margin_us=obj.get("margin_us"),
                baseline_us=obj.get("baseline_us"),
                trials=[Trial.from_dict(t) for t in obj.get("trials", [])],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"bad cell result: {exc}") from exc


@dataclass
class TuneDB:
    """One complete tuning database."""

    base_library: str
    preset: str
    provenance: Dict[str, object]
    cells: Dict[str, CellResult] = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "base_library": self.base_library,
            "preset": self.preset,
            "provenance": dict(self.provenance),
            "cells": {k: v.as_dict() for k, v in sorted(self.cells.items())},
        }

    def dumps(self) -> str:
        """Canonical byte-stable serialisation."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=2) + "\n"

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.dumps())
        return path

    @classmethod
    def from_dict(cls, obj: Dict) -> "TuneDB":
        validate_db(obj)
        return cls(
            base_library=obj["base_library"],
            preset=obj["preset"],
            provenance=dict(obj["provenance"]),
            cells={k: CellResult.from_dict(v)
                   for k, v in obj["cells"].items()},
            schema=int(obj["schema"]),
        )


def validate_db(obj: Dict) -> None:
    """Raise :class:`SchemaError` unless ``obj`` is a valid DB dict."""
    if not isinstance(obj, dict):
        raise SchemaError(f"DB must be an object, got {type(obj).__name__}")
    missing = {"schema", "base_library", "preset", "provenance",
               "cells"} - set(obj)
    if missing:
        raise SchemaError(f"DB missing fields {sorted(missing)}")
    if obj["schema"] != SCHEMA_VERSION:
        raise SchemaError(
            f"schema {obj['schema']!r} unsupported (this build reads "
            f"{SCHEMA_VERSION})"
        )
    if not isinstance(obj["cells"], dict):
        raise SchemaError("'cells' must be an object")
    for key, cell in obj["cells"].items():
        result = CellResult.from_dict(cell)
        if result.cell.key() != key:
            raise SchemaError(
                f"cell key {key!r} does not match its contents "
                f"({result.cell.key()!r})"
            )
        if "algorithm" not in result.best:
            raise SchemaError(f"cell {key!r} best config lacks 'algorithm'")


def load_db(path: Union[str, Path]) -> TuneDB:
    path = Path(path)
    try:
        obj = json.loads(path.read_text())
    except FileNotFoundError:
        raise SchemaError(f"no tuning DB at {path}") from None
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path} is not JSON: {exc}") from exc
    return TuneDB.from_dict(obj)


def merge(a: TuneDB, b: TuneDB) -> TuneDB:
    """Union of two DBs' grids (same base library + preset required).

    On a shared cell, the lower measured best latency wins — merging a
    re-run therefore only ever improves the table.  Provenance keeps
    ``a``'s identity and records the merge inputs.
    """
    if a.base_library != b.base_library:
        raise SchemaError(
            f"cannot merge DBs for different base libraries "
            f"({a.base_library!r} vs {b.base_library!r})"
        )
    if a.preset != b.preset:
        raise SchemaError(
            f"cannot merge DBs for different presets "
            f"({a.preset!r} vs {b.preset!r})"
        )
    cells = dict(a.cells)
    for key, theirs in b.cells.items():
        ours = cells.get(key)
        if ours is None or theirs.best_latency_us < ours.best_latency_us:
            cells[key] = theirs
    provenance = dict(a.provenance)
    provenance["merged_from"] = sorted({
        str(a.provenance.get("git", "unknown")),
        str(b.provenance.get("git", "unknown")),
    })
    return TuneDB(base_library=a.base_library, preset=a.preset,
                  provenance=provenance, cells=cells)


@dataclass
class DiffEntry:
    key: str
    kind: str  # "added" | "removed" | "changed"
    before: Optional[Dict[str, object]] = None
    after: Optional[Dict[str, object]] = None
    latency_delta_us: Optional[float] = None


def diff(old: TuneDB, new: TuneDB) -> List[DiffEntry]:
    """Cell-by-cell comparison: added / removed / changed winners."""
    entries: List[DiffEntry] = []
    for key in sorted(set(old.cells) | set(new.cells)):
        a, b = old.cells.get(key), new.cells.get(key)
        if a is None:
            entries.append(DiffEntry(key, "added", after=b.best))
        elif b is None:
            entries.append(DiffEntry(key, "removed", before=a.best))
        elif a.best != b.best or a.best_latency_us != b.best_latency_us:
            entries.append(DiffEntry(
                key, "changed", before=a.best, after=b.best,
                latency_delta_us=b.best_latency_us - a.best_latency_us))
    return entries


def format_diff(entries: List[DiffEntry]) -> str:
    """Human-readable diff rendering (what the CLI prints)."""
    if not entries:
        return "databases agree on every cell"
    lines = []
    for e in entries:
        if e.kind == "added":
            lines.append(f"+ {e.key}: {Candidate.from_dict(e.after).key()}")
        elif e.kind == "removed":
            lines.append(f"- {e.key}: {Candidate.from_dict(e.before).key()}")
        else:
            delta = (f" ({e.latency_delta_us:+.3f} µs)"
                     if e.latency_delta_us is not None else "")
            lines.append(
                f"~ {e.key}: {Candidate.from_dict(e.before).key()} → "
                f"{Candidate.from_dict(e.after).key()}{delta}"
            )
    return "\n".join(lines)


def format_db(db: TuneDB) -> str:
    """Human-readable table of a DB's winners (``tune show``)."""
    header = (f"tuning DB: base={db.base_library} preset={db.preset} "
              f"schema=v{db.schema}")
    prov = ", ".join(f"{k}={v}" for k, v in sorted(db.provenance.items()))
    lines = [header, f"provenance: {prov}", ""]
    widths = (28, 34, 12, 12, 10)
    cols = ("cell", "winner", "best µs", "base µs", "margin µs")
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    for key in sorted(db.cells):
        cell = db.cells[key]
        row = (
            key,
            Candidate.from_dict(cell.best).key(),
            f"{cell.best_latency_us:.3f}",
            "-" if cell.baseline_us is None else f"{cell.baseline_us:.3f}",
            "-" if cell.margin_us is None else f"{cell.margin_us:.3f}",
        )
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
