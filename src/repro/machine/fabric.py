"""Two-level fat-tree switch fabric with optional oversubscription.

The flat network model prices a message as TX pipe → wire latency → RX
pipe, which assumes full bisection bandwidth.  Real clusters (the
paper's included) hang nodes off leaf switches whose uplinks may be
oversubscribed; when many pods talk at once the uplinks, not the NICs,
become the bottleneck.

Model
-----
* nodes are grouped into *pods* of ``pod_size`` under one leaf switch;
* intra-pod messages hop through the leaf only (``leaf_latency``);
* inter-pod messages additionally cross the pod's **uplink pipes**
  (one up, one down) and a spine hop; the uplink's aggregate
  bandwidth is ``pod_size / oversubscription × link bandwidth`` — at
  ``oversubscription=1`` the fabric is non-blocking and behaves like
  the flat model plus switch latencies.

Probes (per-pod byte counters) let tests and ablations attribute
congestion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..sim import RateLimiter, Simulator
from .params import MachineParams


@dataclass(frozen=True)
class FabricParams:
    """Fat-tree shape and cost knobs."""

    pod_size: int = 16
    oversubscription: float = 1.0
    leaf_latency: float = 2.0e-7
    spine_latency: float = 3.0e-7

    def __post_init__(self) -> None:
        if self.pod_size < 1:
            raise ValueError(f"pod_size must be >= 1, got {self.pod_size}")
        if self.oversubscription < 1.0:
            raise ValueError(
                f"oversubscription must be >= 1 (1 = non-blocking), "
                f"got {self.oversubscription}"
            )
        for name in ("leaf_latency", "spine_latency"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


class PodUplink:
    """One pod's up/down pipes to the spine."""

    __slots__ = ("up", "down", "bytes_up", "bytes_down")

    def __init__(self, sim: Simulator) -> None:
        self.up = RateLimiter(sim)
        self.down = RateLimiter(sim)
        self.bytes_up = 0
        self.bytes_down = 0


class Fabric:
    """Live fabric state for one cluster."""

    def __init__(self, sim: Simulator, params: MachineParams,
                 fabric: FabricParams) -> None:
        self.sim = sim
        self.params = params
        self.fp = fabric
        n_pods = -(-params.nodes // fabric.pod_size)
        self.uplinks: List[PodUplink] = [PodUplink(sim) for _ in range(n_pods)]
        # Effective per-byte time on an uplink: the uplink carries the
        # whole pod's inter-pod traffic at pod_size/oversub × link rate.
        per_pod_capacity = fabric.pod_size / fabric.oversubscription
        self.uplink_byte_gap = params.nic.byte_gap / per_pod_capacity
        self.uplink_msg_gap = params.nic.msg_gap / per_pod_capacity

    @property
    def n_pods(self) -> int:
        """Number of leaf switches."""
        return len(self.uplinks)

    def pod_of(self, node: int) -> int:
        """Pod (leaf switch) hosting ``node``."""
        return node // self.fp.pod_size

    def same_pod(self, a: int, b: int) -> bool:
        """True when two nodes share a leaf switch."""
        return self.pod_of(a) == self.pod_of(b)

    def uplink_time(self, nbytes: int) -> float:
        """Service time of one message on an uplink pipe."""
        return max(self.uplink_msg_gap, nbytes * self.uplink_byte_gap)

    def path_latency(self, src_node: int, dst_node: int) -> float:
        """Pure switch-hop latency of the path (excludes pipes/wire)."""
        if self.same_pod(src_node, dst_node):
            return self.fp.leaf_latency
        return 2 * self.fp.leaf_latency + self.fp.spine_latency

    def total_interpod_bytes(self) -> int:
        """Bytes that crossed any uplink (congestion probe)."""
        return sum(u.bytes_up for u in self.uplinks)
