"""Machine model (subsystem S2): parameters, topology, live hardware."""

from .fabric import Fabric, FabricParams, PodUplink
from .hardware import ClusterHardware, NodeHardware
from .params import CpuParams, MachineParams, MemoryParams, NicParams
from .presets import available_presets, broadwell_opa, preset, single_node, skylake_ib, small_test
from .topology import Cluster

__all__ = [
    "Cluster",
    "Fabric",
    "FabricParams",
    "PodUplink",
    "ClusterHardware",
    "CpuParams",
    "MachineParams",
    "MemoryParams",
    "NicParams",
    "NodeHardware",
    "available_presets",
    "broadwell_opa",
    "preset",
    "single_node",
    "skylake_ib",
    "small_test",
]
