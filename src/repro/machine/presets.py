"""Named machine presets.

``broadwell_opa`` is the paper's testbed (§3): 128 nodes, dual Xeon
E5-2695v4 (18 ppn used), Intel Omni-Path at 100 Gbps and 97 Mmsg/s.
The smaller presets exist so unit/integration tests and laptops can run
full collectives in milliseconds.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .params import CpuParams, MachineParams, MemoryParams, NicParams

_REGISTRY: Dict[str, Callable[..., MachineParams]] = {}


def _register(fn: Callable[..., MachineParams]) -> Callable[..., MachineParams]:
    _REGISTRY[fn.__name__] = fn
    return fn


@_register
def broadwell_opa(nodes: int = 128, ppn: int = 18) -> MachineParams:
    """The paper's cluster: Broadwell + Intel Omni-Path (100 Gbps)."""
    return MachineParams(
        nodes=nodes,
        ppn=ppn,
        nic=NicParams(
            latency=1.0e-6,
            inject_overhead=4.0e-7,
            recv_overhead=3.0e-7,
            msg_gap=1.0 / 97.0e6,
            byte_gap=8.0e-11,
            rendezvous_overhead=1.2e-6,
            eager_limit=16384,
        ),
        memory=MemoryParams(),
        cpu=CpuParams(),
        name=f"broadwell_opa[{nodes}x{ppn}]",
    )


@_register
def small_test(nodes: int = 4, ppn: int = 4) -> MachineParams:
    """Tiny cluster for unit tests — same cost structure, fewer ranks."""
    return broadwell_opa(nodes=nodes, ppn=ppn).scaled(name=f"small_test[{nodes}x{ppn}]")


@_register
def single_node(ppn: int = 18) -> MachineParams:
    """One node — used by the intra-node transport ablation (A2)."""
    return broadwell_opa(nodes=1, ppn=ppn).scaled(name=f"single_node[1x{ppn}]")


@_register
def skylake_ib(nodes: int = 64, ppn: int = 24) -> MachineParams:
    """A second, differently balanced machine (EDR InfiniBand-like).

    Used to check that PiP-MColl's advantage is not an artifact of one
    parameter point: higher message rate, slightly lower latency.
    """
    return MachineParams(
        nodes=nodes,
        ppn=ppn,
        nic=NicParams(
            latency=0.9e-6,
            inject_overhead=3.5e-7,
            recv_overhead=2.8e-7,
            msg_gap=1.0 / 150.0e6,
            byte_gap=8.0e-11,  # 100 Gbps EDR
            rendezvous_overhead=1.0e-6,
            eager_limit=16384,
        ),
        memory=MemoryParams(),
        cpu=CpuParams(),
        name=f"skylake_ib[{nodes}x{ppn}]",
    )


def preset(name: str, **kwargs) -> MachineParams:
    """Look up a preset by name (``preset('broadwell_opa', nodes=8)``)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown preset {name!r}; available: {sorted(_REGISTRY)}") from None
    return factory(**kwargs)


def available_presets() -> List[str]:
    """Names accepted by :func:`preset`."""
    return sorted(_REGISTRY)
