"""Machine-model parameter sets.

All times are **seconds**, all sizes **bytes**.  The network model is
LogGP-shaped (Alexandrov et al.):

``L``
    end-to-end wire+switch latency,
``o`` (``inject_overhead`` / ``recv_overhead``)
    CPU time a core spends posting / draining one message — this is the
    term that makes a *single* leader rank an injection bottleneck and
    the paper's multi-object design a win,
``g`` (``msg_gap``)
    the NIC's per-message gap; ``1/g`` is the aggregate message rate the
    adapter can sustain (97 Mmsg/s for the paper's Omni-Path),
``G`` (``byte_gap``)
    per-byte gap; ``1/G`` is the link bandwidth (100 Gbps).

The memory model prices the operations the paper's §1 contrasts:
plain user-space copies, kernel-crossing copies (CMA's
``process_vm_readv``), address-space attach (XPMEM) and page faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict


def _require_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def _require_nonnegative(name: str, value: float) -> None:
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


@dataclass(frozen=True)
class NicParams:
    """LogGP-style network interface parameters."""

    latency: float = 1.0e-6  # L
    inject_overhead: float = 4.0e-7  # o (send side, per message, per core)
    recv_overhead: float = 3.0e-7  # o (receive side)
    msg_gap: float = 1.0 / 97.0e6  # g: Omni-Path 97 Mmsg/s
    byte_gap: float = 8.0e-11  # G: 100 Gbps = 12.5 GB/s
    rendezvous_overhead: float = 1.2e-6  # extra handshake for large messages
    eager_limit: int = 16384  # eager→rendezvous protocol switch

    def __post_init__(self) -> None:
        _require_nonnegative("latency", self.latency)
        _require_nonnegative("inject_overhead", self.inject_overhead)
        _require_nonnegative("recv_overhead", self.recv_overhead)
        _require_positive("msg_gap", self.msg_gap)
        _require_positive("byte_gap", self.byte_gap)
        _require_nonnegative("rendezvous_overhead", self.rendezvous_overhead)
        if self.eager_limit < 0:
            raise ValueError("eager_limit must be >= 0")

    @property
    def message_rate(self) -> float:
        """Aggregate adapter message rate (msg/s)."""
        return 1.0 / self.msg_gap

    @property
    def bandwidth(self) -> float:
        """Link bandwidth (bytes/s)."""
        return 1.0 / self.byte_gap

    def wire_time(self, nbytes: int) -> float:
        """Time a message of ``nbytes`` occupies the adapter pipe."""
        return max(self.msg_gap, nbytes * self.byte_gap)


@dataclass(frozen=True)
class MemoryParams:
    """Intra-node memory-system costs."""

    copy_latency: float = 6.0e-8  # fixed cost per memcpy call
    copy_byte_time: float = 1.25e-10  # single-core memcpy: 8 GB/s
    bus_byte_time: float = 1.0e-11  # node aggregate copy bandwidth: 100 GB/s
    # (dual-socket Broadwell STREAM-triad territory; single-core memcpy
    # stays at 8 GB/s, so ~12 concurrent copies saturate the node)
    syscall_overhead: float = 4.0e-7  # one kernel crossing (CMA read/write)
    page_fault: float = 1.1e-6  # cost of one soft page fault
    page_size: int = 4096
    attach_overhead: float = 2.2e-6  # XPMEM xpmem_get + xpmem_attach
    attach_lookup: float = 1.5e-7  # XPMEM cached-attachment lookup/validation
    flag_latency: float = 5.0e-8  # shared-memory flag signal→observe time

    def __post_init__(self) -> None:
        for name in (
            "copy_latency",
            "copy_byte_time",
            "bus_byte_time",
            "syscall_overhead",
            "page_fault",
            "attach_overhead",
            "attach_lookup",
            "flag_latency",
        ):
            _require_nonnegative(name, getattr(self, name))
        if self.page_size <= 0:
            raise ValueError("page_size must be > 0")

    def copy_time(self, nbytes: int) -> float:
        """Single-core user-space memcpy time (no contention)."""
        return self.copy_latency + nbytes * self.copy_byte_time

    def fault_time(self, nbytes: int) -> float:
        """Cost of first-touch faults across ``nbytes`` of fresh mapping."""
        pages = -(-max(nbytes, 1) // self.page_size)  # ceil-div
        return pages * self.page_fault


@dataclass(frozen=True)
class CpuParams:
    """Per-core software costs independent of any transport."""

    dispatch_overhead: float = 1.0e-7  # MPI entry / argument checking per call
    progress_poll: float = 4.0e-8  # one pass of the progress engine

    def __post_init__(self) -> None:
        _require_nonnegative("dispatch_overhead", self.dispatch_overhead)
        _require_nonnegative("progress_poll", self.progress_poll)


@dataclass(frozen=True)
class MachineParams:
    """Everything the simulator needs to price a cluster."""

    nodes: int = 128
    ppn: int = 18
    nic: NicParams = field(default_factory=NicParams)
    memory: MemoryParams = field(default_factory=MemoryParams)
    cpu: CpuParams = field(default_factory=CpuParams)
    name: str = "unnamed"

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.ppn < 1:
            raise ValueError(f"ppn must be >= 1, got {self.ppn}")

    @property
    def world_size(self) -> int:
        """Total number of ranks."""
        return self.nodes * self.ppn

    def scaled(self, **changes: Any) -> "MachineParams":
        """A copy with some fields replaced (for sweeps)."""
        return replace(self, **changes)

    def describe(self) -> Dict[str, Any]:
        """Human-oriented summary used by reports."""
        return {
            "name": self.name,
            "nodes": self.nodes,
            "ppn": self.ppn,
            "ranks": self.world_size,
            "nic_latency_us": self.nic.latency * 1e6,
            "nic_msg_rate_M/s": self.nic.message_rate / 1e6,
            "nic_bandwidth_Gbps": self.nic.bandwidth * 8 / 1e9,
        }
