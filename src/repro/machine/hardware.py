"""Live hardware objects: per-node NIC pipes and memory buses.

These wrap :class:`~repro.sim.resources.RateLimiter` instances so that
concurrent simulated ranks contend for the *shared* facilities of their
node — the NIC's injection/extraction pipelines and the aggregate
memory-copy bandwidth — while per-core costs are paid inline by each
rank coroutine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..sim import Event, RateLimiter, Simulator
from .params import MachineParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


class NodeHardware:
    """The shared facilities of one node."""

    __slots__ = ("sim", "params", "node_id", "tx", "rx", "membus",
                 "tx_messages", "rx_messages",
                 "_copy_latency", "_copy_byte", "_bus_byte")

    def __init__(self, sim: Simulator, params: MachineParams, node_id: int) -> None:
        self.sim = sim
        self.params = params
        self.node_id = node_id
        #: NIC injection pipeline (bounded by msg_gap / byte_gap).
        self.tx = RateLimiter(sim)
        #: NIC extraction pipeline.
        self.rx = RateLimiter(sim)
        #: Aggregate intra-node copy bandwidth.
        self.membus = RateLimiter(sim)
        self.tx_messages = 0
        self.rx_messages = 0
        # Copy-cost coefficients, hoisted out of the per-message path.
        self._copy_latency = params.memory.copy_latency
        self._copy_byte = params.memory.copy_byte_time
        self._bus_byte = params.memory.bus_byte_time

    # -- NIC --------------------------------------------------------
    def inject(self, nbytes: int) -> Event:
        """Queue ``nbytes`` on the TX pipe; event fires when on the wire."""
        self.tx_messages += 1
        return self.tx.occupy(self.params.nic.wire_time(nbytes))

    def extract(self, nbytes: int) -> Event:
        """Queue ``nbytes`` on the RX pipe; event fires when drained."""
        self.rx_messages += 1
        return self.rx.occupy(self.params.nic.wire_time(nbytes))

    # -- memory -----------------------------------------------------
    def copy_cost(self, nbytes: int) -> float:
        """Charge one memcpy of ``nbytes``; returns its duration.

        The duration is ``max(single-core time, bus-queue completion)``:
        the calling rank is blocked for the core copy time, and the
        copy's bus share is *reserved* so that many concurrent copies
        slow each other down — but because the bus is a FIFO pipe, the
        completion time is known immediately, so callers need only one
        scheduled event.  This method mutates bus state: call it
        exactly once per modeled copy, at the simulated instant the
        copy starts.
        """
        now = self.sim.now
        core_done = now + self._copy_latency + nbytes * self._copy_byte
        bus_done = self.membus.reserve(nbytes * self._bus_byte)
        return (core_done if core_done > bus_done else bus_done) - now

    def mem_copy(self, nbytes: int):
        """Generator: one user-space memcpy of ``nbytes`` on this node.

        Usage: ``yield from node.mem_copy(n)`` — blocks the calling
        rank for :meth:`copy_cost`.
        """
        yield self.sim.timeout(self.copy_cost(nbytes))


class ClusterHardware:
    """All nodes of the simulated cluster."""

    def __init__(self, sim: Simulator, params: MachineParams) -> None:
        self.sim = sim
        self.params = params
        self.nodes: List[NodeHardware] = [
            NodeHardware(sim, params, node_id) for node_id in range(params.nodes)
        ]

    def __getitem__(self, node_id: int) -> NodeHardware:
        return self.nodes[node_id]

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def total_tx_messages(self) -> int:
        """Messages injected cluster-wide (model probe)."""
        return sum(n.tx_messages for n in self.nodes)
