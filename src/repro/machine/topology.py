"""Cluster topology: node ↔ rank arithmetic.

Ranks are laid out **block by node** (the layout the paper assumes):
global rank ``r`` lives on node ``r // ppn`` with local rank ``r % ppn``.
The local rank 0 of every node is that node's *leader* (the paper's
"local root process").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class Cluster:
    """A cluster of ``nodes`` nodes with ``ppn`` ranks each."""

    nodes: int
    ppn: int

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.ppn < 1:
            raise ValueError(f"ppn must be >= 1, got {self.ppn}")

    @property
    def world_size(self) -> int:
        """Total rank count."""
        return self.nodes * self.ppn

    # -- rank arithmetic ------------------------------------------------
    def node_of(self, rank: int) -> int:
        """Node hosting global ``rank``."""
        self._check_rank(rank)
        return rank // self.ppn

    def local_rank(self, rank: int) -> int:
        """Position of ``rank`` within its node."""
        self._check_rank(rank)
        return rank % self.ppn

    def global_rank(self, node: int, local: int) -> int:
        """Global rank of ``local`` on ``node``."""
        self._check_node(node)
        if not 0 <= local < self.ppn:
            raise ValueError(f"local rank {local} out of range [0, {self.ppn})")
        return node * self.ppn + local

    def leader_of(self, node: int) -> int:
        """The node's leader rank (local rank 0)."""
        return self.global_rank(node, 0)

    def leader_of_rank(self, rank: int) -> int:
        """Leader rank of the node hosting ``rank``."""
        return self.node_of(rank) * self.ppn

    def is_leader(self, rank: int) -> bool:
        """True if ``rank`` is its node's leader."""
        return self.local_rank(rank) == 0

    def same_node(self, a: int, b: int) -> bool:
        """True if ranks ``a`` and ``b`` share a node."""
        return self.node_of(a) == self.node_of(b)

    def ranks_on_node(self, node: int) -> range:
        """All global ranks on ``node``, ascending."""
        self._check_node(node)
        return range(node * self.ppn, (node + 1) * self.ppn)

    def leaders(self) -> List[int]:
        """All leader ranks, ascending by node."""
        return [n * self.ppn for n in range(self.nodes)]

    def ranks(self) -> Iterator[int]:
        """All ranks, ascending."""
        return iter(range(self.world_size))

    def node_pairs(self) -> Iterator[Tuple[int, int]]:
        """All ordered pairs of distinct nodes (test helper)."""
        for a in range(self.nodes):
            for b in range(self.nodes):
                if a != b:
                    yield (a, b)

    # -- validation -----------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range [0, {self.world_size})")

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.nodes:
            raise ValueError(f"node {node} out of range [0, {self.nodes})")
