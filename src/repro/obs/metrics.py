"""Metrics registry: counters, gauges and histograms with labels.

One :class:`Metrics` instance collects everything a run wants to
count — bytes by transport, retransmits, NIC busy time, sync waits —
under Prometheus-flavoured names (``bytes_total{transport="network"}``).
The :class:`~repro.obs.spans.SpanRecorder` feeds it automatically from
span closures; anything else (hardware counters, protocol state) is
folded in at end of run by :meth:`SpanRecorder.finalize`.

All values are plain Python numbers; a :meth:`Metrics.snapshot` is a
nested dict safe to ``json.dumps``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

#: a metric key: (name, sorted label items)
_Key = Tuple[str, Tuple[Tuple[str, Any], ...]]


def _key(name: str, labels: Dict[str, Any]) -> _Key:
    return (name, tuple(sorted(labels.items())))


class CardinalityError(RuntimeError):
    """Raised when a registry exceeds its label-set budget.

    High-cardinality labels (per-rank, per-message ids) belong in
    structured dumps (BenchRecords, monitor summaries), not in the
    metric registry — this guard catches them at the write site.
    """


@dataclass
class Histogram:
    """Log2-bucketed distribution (count/sum/min/max + buckets).

    Buckets are keyed by ``floor(log2(value))`` — coarse, but enough to
    tell 64 B messages from 64 KiB ones without configuration.
    """

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    buckets: Dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        exp = math.floor(math.log2(value)) if value > 0 else -math.inf
        self.buckets[exp] = self.buckets.get(exp, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
        }


class Metrics:
    """Labelled counters, gauges and histograms.

    ``inc``/``set_gauge``/``observe`` write; ``counter``/``gauge``/
    ``histogram`` read one series; :meth:`by_label` pivots one metric
    into ``{label value: number}`` (how the profiler gets its
    bytes-by-transport table).
    """

    #: default bound on distinct (name, label-set) series
    MAX_SERIES = 1000

    def __init__(self, max_series: int = MAX_SERIES) -> None:
        self._counters: Dict[_Key, float] = {}
        self._gauges: Dict[_Key, float] = {}
        self._histograms: Dict[_Key, Histogram] = {}
        self.max_series = max_series
        self._series = 0

    def _grow(self, k: _Key) -> None:
        self._series += 1
        if self._series > self.max_series:
            name, items = k
            raise CardinalityError(
                f"metrics registry exceeded {self.max_series} distinct "
                f"label sets (while writing {name}{dict(items)!r}) — move "
                "high-cardinality data into a structured dump instead"
            )

    # -- writes ----------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Add ``value`` to a counter (creating it at 0)."""
        k = _key(name, labels)
        if k not in self._counters:
            self._grow(k)
        self._counters[k] = self._counters.get(k, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge to ``value``."""
        k = _key(name, labels)
        if k not in self._gauges:
            self._grow(k)
        self._gauges[k] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one histogram sample."""
        k = _key(name, labels)
        hist = self._histograms.get(k)
        if hist is None:
            self._grow(k)
            hist = self._histograms[k] = Histogram()
        hist.observe(value)

    def reset(self) -> None:
        """Drop every series (warmup wipes)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._series = 0

    # -- reads -----------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> float:
        """Current value of one counter series (0 if never written)."""
        return self._counters.get(_key(name, labels), 0.0)

    def gauge(self, name: str, **labels: Any) -> float:
        """Current value of one gauge series (0 if never written)."""
        return self._gauges.get(_key(name, labels), 0.0)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """One histogram series (empty if never written)."""
        return self._histograms.get(_key(name, labels), Histogram())

    def by_label(self, name: str, label: str) -> Dict[Any, float]:
        """Pivot a counter over one label: ``{label value: total}``.

        Series missing the label are skipped; series with extra labels
        are summed into their ``label`` value.
        """
        out: Dict[Any, float] = {}
        for (metric, items), value in self._counters.items():
            if metric != name:
                continue
            labels = dict(items)
            if label not in labels:
                continue
            out[labels[label]] = out.get(labels[label], 0.0) + value
        return out

    def names(self) -> List[str]:
        """Every metric name with at least one series."""
        seen = []
        for store in (self._counters, self._gauges, self._histograms):
            for metric, _items in store:
                if metric not in seen:
                    seen.append(metric)
        return sorted(seen)

    # -- reporting -------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe nested view of every series."""

        def fmt(items: Tuple[Tuple[str, Any], ...]) -> str:
            if not items:
                return ""
            return "{" + ",".join(f"{k}={v}" for k, v in items) + "}"

        out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for (name, items), value in sorted(self._counters.items()):
            out["counters"][name + fmt(items)] = value
        for (name, items), value in sorted(self._gauges.items()):
            out["gauges"][name + fmt(items)] = value
        for (name, items), hist in sorted(self._histograms.items()):
            out["histograms"][name + fmt(items)] = hist.as_dict()
        return out

    def format(self) -> str:
        """Readable one-line-per-series table."""
        snap = self.snapshot()
        lines = ["metrics:"]
        for series, value in snap["counters"].items():
            lines.append(f"  {series:42s} {value:g}")
        for series, value in snap["gauges"].items():
            lines.append(f"  {series:42s} {value:g}")
        for series, h in snap["histograms"].items():
            lines.append(
                f"  {series:42s} n={h['count']} mean={h['mean']:g}"
            )
        return "\n".join(lines)
