"""Per-resource utilization telemetry on the simulation clock.

Every shared facility of the simulated machine — NIC injection and
extraction pipes, the per-node memory bus, fabric pod uplinks and any
:class:`~repro.sim.resources.Resource` slots — can record its busy
intervals and queue pressure into a :class:`ResourceTimeline`.  A
:class:`ResourceMonitor` attaches one timeline per facility of a
:class:`~repro.runtime.world.World`, derives occupancy gauges, and
feeds Perfetto counter tracks (:mod:`repro.obs.perfetto`).

The hooks live inside :meth:`RateLimiter.reserve
<repro.sim.resources.RateLimiter.reserve>` — the single FIFO funnel
both the reference choreography *and* the macro-event fast path go
through with identical timestamps — so the recorded telemetry is
byte-identical across engine paths (enforced by
``tests/validate/test_differential.py``).

Occupancy definitions
---------------------
*Pipe occupancy* is wall-clock fraction the pipe spent serving jobs:
``busy_time / elapsed``.  *Injection-engine occupancy* — the paper's
lens (PAPER.md §2–3: multi-object schedules keep all ``P`` per-node
engines busy; single-object schedules idle ``P-1``) — has two faces:
time-integrated load, ``Σ msgs×o / (elapsed × nranks)``, and
*engine utilization*, the fraction of injection engines the schedule
engages at all (``active_ranks / nranks``).  The paper's ``P×`` claim
is literally the second (busy engines vs idled engines), so the Fig. 2
report checks the ``≥ P×`` bar against engine utilization while also
tabulating the time-integrated ratio.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: tolerance for interval-overlap validation (simulated seconds)
_EPS = 1e-15


class ResourceTimeline:
    """Busy intervals + queue samples for one facility, on the sim clock.

    Intervals arrive in non-decreasing start order (the limiter is
    FIFO); back-to-back intervals are merged so the list stays compact
    even for million-message runs.
    """

    __slots__ = ("kind", "name", "node", "intervals", "queue_samples")

    def __init__(self, kind: str, name: str, node: Optional[int] = None) -> None:
        #: facility class: "nic_tx" | "nic_rx" | "membus" | "uplink" | "slots"
        self.kind = kind
        #: unique instance name, e.g. "nic_tx/node3"
        self.name = name
        #: owning node id (None for fabric links)
        self.node = node
        #: merged busy windows, ``[[start, end], ...]``
        self.intervals: List[List[float]] = []
        #: ``(t, depth)`` or ``(t, depth, in_use)`` pressure samples —
        #: backlog seconds for pipes, waiter count for slot resources
        self.queue_samples: List[Tuple[float, ...]] = []

    # -- recording (hot path) -------------------------------------------
    def record_busy(self, start: float, end: float) -> None:
        """Append one busy interval ``[start, end)``; merges contiguity."""
        if end <= start:
            return  # zero-length reservations carry no busy time
        iv = self.intervals
        if iv:
            last = iv[-1]
            if start <= last[1] + _EPS:
                if end > last[1]:
                    last[1] = end
                return
        iv.append([start, end])

    def sample_queue(self, t: float, depth: float,
                     in_use: Optional[int] = None) -> None:
        """Record queue pressure at time ``t``.

        Consecutive samples with equal depth are collapsed (the counter
        track only needs edges).
        """
        qs = self.queue_samples
        if qs and qs[-1][0] == t:
            qs[-1] = (t, depth) if in_use is None else (t, depth, in_use)
            return
        if qs and qs[-1][1] == depth and (in_use is None
                                          or qs[-1][2:] == (in_use,)):
            return
        qs.append((t, depth) if in_use is None else (t, depth, in_use))

    # -- derived views ---------------------------------------------------
    @property
    def busy_time(self) -> float:
        """Total seconds the facility spent busy."""
        return sum(end - start for start, end in self.intervals)

    def busy_between(self, t0: float, t1: float) -> float:
        """Busy seconds clipped to the window ``[t0, t1]``."""
        total = 0.0
        for start, end in self.intervals:
            lo = start if start > t0 else t0
            hi = end if end < t1 else t1
            if hi > lo:
                total += hi - lo
        return total

    def occupancy(self, t0: float, t1: float) -> float:
        """Busy fraction of the window ``[t0, t1]`` — always in [0, 1]."""
        if t1 <= t0:
            return 0.0
        frac = self.busy_between(t0, t1) / (t1 - t0)
        return 1.0 if frac > 1.0 else frac

    @property
    def max_queue(self) -> float:
        """Largest queue-pressure sample seen."""
        return max((s[1] for s in self.queue_samples), default=0.0)

    def validate(self) -> None:
        """Raise AssertionError on overlapping or non-monotone intervals."""
        prev_end = -float("inf")
        for start, end in self.intervals:
            assert end > start, f"{self.name}: empty interval [{start}, {end})"
            assert start >= prev_end - _EPS, (
                f"{self.name}: interval [{start}, {end}) overlaps previous "
                f"ending at {prev_end}"
            )
            prev_end = end

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe dump (byte-identity probe for the differential tests)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "node": self.node,
            "busy_time": self.busy_time,
            "intervals": [[s, e] for s, e in self.intervals],
            "queue_samples": [list(s) for s in self.queue_samples],
        }


class ResourceMonitor:
    """Attaches a :class:`ResourceTimeline` to every facility of a world.

    Built by ``World(..., resources=True)``.  Unlike a span recorder,
    attaching a monitor does **not** disarm the macro-event fast path:
    the hooks sit below both engine paths.
    """

    def __init__(self, world: "Any") -> None:
        self.world = world
        self.timelines: List[ResourceTimeline] = []
        self._t0 = world.sim.now
        for node in world.hw.nodes:
            nid = node.node_id
            node.tx.timeline = self._add("nic_tx", f"nic_tx/node{nid}", nid)
            node.rx.timeline = self._add("nic_rx", f"nic_rx/node{nid}", nid)
            node.membus.timeline = self._add("membus", f"membus/node{nid}", nid)
        if world.fabric is not None:
            for pod, link in enumerate(world.fabric.uplinks):
                link.up.timeline = self._add("uplink", f"uplink_up/pod{pod}")
                link.down.timeline = self._add("uplink", f"uplink_down/pod{pod}")

    def _add(self, kind: str, name: str,
             node: Optional[int] = None) -> ResourceTimeline:
        tl = ResourceTimeline(kind, name, node)
        self.timelines.append(tl)
        return tl

    # -- windows ---------------------------------------------------------
    def reset(self) -> None:
        """Drop recorded telemetry and restart the measurement window
        at the current sim time (warmup wipes, mirroring Metrics.reset)."""
        for tl in self.timelines:
            tl.intervals.clear()
            tl.queue_samples.clear()
        self._t0 = self.world.sim.now
        for ctx in self.world.contexts:
            ctx.nic_msgs = 0
            ctx.nic_bytes = 0

    @property
    def window(self) -> Tuple[float, float]:
        """The measurement window ``(t0, now)``."""
        return (self._t0, self.world.sim.now)

    def by_kind(self, kind: str) -> List[ResourceTimeline]:
        """Every timeline of one facility class."""
        return [tl for tl in self.timelines if tl.kind == kind]

    def occupancy_by_kind(self) -> Dict[str, float]:
        """Mean pipe occupancy per facility class over the window."""
        t0, t1 = self.window
        out: Dict[str, float] = {}
        for kind in ("nic_tx", "nic_rx", "membus", "uplink", "slots"):
            tls = self.by_kind(kind)
            if tls:
                out[kind] = sum(tl.occupancy(t0, t1) for tl in tls) / len(tls)
        return out

    # -- the paper's lens ------------------------------------------------
    def injection_summary(self) -> Dict[str, Any]:
        """Per-rank injection-engine telemetry vs the LogGP ceiling.

        The injection engine of rank *r* is the CPU time it spends
        paying ``o`` (``inject_overhead``) for inter-node messages.
        ``aggregate_occupancy`` is ``Σ msgs×o / (elapsed × nranks)`` —
        time-integrated engine load.  ``engine_utilization`` is the
        fraction of injection engines the schedule *engages at all*
        (``active_ranks / nranks``) — the paper's §2–3 busy-vs-idle
        claim ("multi-object keeps all ``P`` per-node engines busy;
        single-object idles ``P-1``") is about this quantity, and the
        Fig. 2 ``≥ P×`` bar is checked against it.  ``rate_ceiling``
        is the hardware's ``1/g`` message rate for comparison with
        ``rate_per_rank``.
        """
        world = self.world
        t0, t1 = self.window
        elapsed = t1 - t0
        o = world.params.nic.inject_overhead
        g = world.params.nic.msg_gap
        msgs = [ctx.nic_msgs for ctx in world.contexts]
        nbytes = [ctx.nic_bytes for ctx in world.contexts]
        nranks = len(msgs)
        total_msgs = sum(msgs)
        busy = [m * o for m in msgs]
        agg = (sum(busy) / (elapsed * nranks)) if elapsed > 0 and nranks else 0.0
        return {
            "window_s": elapsed,
            "inject_overhead_s": o,
            "rate_ceiling_per_rank": 1.0 / g,
            "total_msgs": total_msgs,
            "total_bytes": sum(nbytes),
            "active_ranks": sum(1 for m in msgs if m),
            "engine_utilization": (sum(1 for m in msgs if m) / nranks
                                   if nranks else 0.0),
            "msgs_per_rank": msgs,
            "rate_per_rank": [m / elapsed if elapsed > 0 else 0.0
                              for m in msgs],
            "aggregate_occupancy": agg,
        }

    # -- registry / reporting -------------------------------------------
    def register_gauges(self, metrics: "Any") -> None:
        """Fold aggregate occupancy gauges into a metrics registry.

        Only per-*kind* aggregates are registered — per-node series at
        128 nodes would blow the registry's cardinality guard; the
        per-node arrays live in :meth:`summary` / BenchRecords instead.
        """
        for kind, occ in self.occupancy_by_kind().items():
            metrics.set_gauge("resource_occupancy", occ, resource=kind)
        for kind in ("nic_tx", "nic_rx", "membus", "uplink"):
            tls = self.by_kind(kind)
            if tls:
                metrics.set_gauge("resource_busy_seconds",
                                  sum(tl.busy_time for tl in tls),
                                  resource=kind)
                metrics.set_gauge("resource_max_queue",
                                  max(tl.max_queue for tl in tls),
                                  resource=kind)
        inj = self.injection_summary()
        metrics.set_gauge("injection_occupancy", inj["aggregate_occupancy"])
        metrics.set_gauge("injection_active_ranks", inj["active_ranks"])
        metrics.set_gauge("injection_engine_utilization",
                          inj["engine_utilization"])

    def summary(self) -> Dict[str, Any]:
        """Compact per-kind + per-node rollup for BenchRecords."""
        t0, t1 = self.window
        per_node: Dict[str, List[float]] = {}
        for kind in ("nic_tx", "nic_rx", "membus"):
            tls = sorted(self.by_kind(kind), key=lambda tl: tl.node)
            per_node[kind] = [tl.occupancy(t0, t1) for tl in tls]
        return {
            "window": [t0, t1],
            "occupancy_by_kind": self.occupancy_by_kind(),
            "occupancy_per_node": per_node,
            "injection": self.injection_summary(),
        }

    def validate(self) -> None:
        """Check every timeline's interval invariants."""
        for tl in self.timelines:
            tl.validate()

    def as_dict(self) -> Dict[str, Any]:
        """Full JSON-safe dump of every timeline (byte-identity probe)."""
        return {
            "window": list(self.window),
            "timelines": [tl.as_dict() for tl in self.timelines],
            "injection": self.injection_summary(),
        }
