"""Critical-path extraction over the message-dependency graph.

Why did the collective take as long as it did?  The answer is a chain
of messages: the last rank to finish was released by some arrival,
whose sender was in turn released by an earlier arrival, and so on
back to the start.  :func:`critical_path` walks that chain backwards
through the recorded message spans and names, per hop, the
source/destination ranks, the transport, and (when the algorithm
annotated its rounds) the round the message belonged to.

This is the paper's §3 diagnosis made mechanical: "PiP-MPICH loses to
size-synchronization overhead" becomes a path whose hops sit in
``sizesync`` spans; a leader-bottlenecked hierarchical collective
shows every hop funnelling through one rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .spans import Span
from .timeline import TraceTree

#: tolerance when comparing simulated timestamps
_EPS = 1e-12


@dataclass
class Hop:
    """One message on the critical path."""

    src: int
    dst: int
    t0: float
    t1: float
    nbytes: int
    transport: str
    round: Optional[int] = None
    collective: Optional[str] = None
    #: facility this edge mostly waited on ("nic_pipe" | "wire" |
    #: "membus" | "cpu" | "pipe_backlog" | ...) — set when the caller
    #: passes machine params (see :func:`repro.obs.attribution.annotate_hops`)
    waited_on: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass
class CriticalPath:
    """The bounding chain of one run (or one collective within it)."""

    hops: List[Hop] = field(default_factory=list)
    #: rank whose work ends the path (finishes last)
    end_rank: int = -1
    #: simulated time the path ends
    end_time: float = 0.0
    collective: Optional[str] = None

    @property
    def start_time(self) -> float:
        """Start of the first hop (``end_time`` with no hops)."""
        return self.hops[0].t0 if self.hops else self.end_time

    @property
    def elapsed(self) -> float:
        """Start of the first hop → path end (0 with no hops)."""
        return (self.end_time - self.hops[0].t0) if self.hops else 0.0

    @property
    def bounding_rank(self) -> int:
        """The rank that finishes last — what the run waits on."""
        return self.end_rank

    @property
    def bounding_transport(self) -> Optional[str]:
        """Transport carrying the most path time."""
        totals: Dict[str, float] = {}
        for hop in self.hops:
            totals[hop.transport] = totals.get(hop.transport, 0.0) + hop.duration
        if not totals:
            return None
        return max(totals, key=lambda t: totals[t])

    @property
    def bounding_round(self) -> Optional[int]:
        """Round of the single longest hop (None if unannotated)."""
        if not self.hops:
            return None
        return max(self.hops, key=lambda h: h.duration).round

    def describe(self) -> str:
        """Human-readable path report."""
        head = self.collective or "run"
        lines = [
            f"critical path ({head}): {len(self.hops)} hops, "
            f"{self.elapsed * 1e6:.2f} us"
        ]
        for hop in self.hops:
            rnd = f" round {hop.round}" if hop.round is not None else ""
            waited = f"  waited on {hop.waited_on}" \
                if hop.waited_on is not None else ""
            lines.append(
                f"  rank {hop.src} --{hop.transport}--> rank {hop.dst}"
                f"{rnd}  {hop.nbytes} B  "
                f"[{hop.t0 * 1e6:.2f}us → {hop.t1 * 1e6:.2f}us]{waited}"
            )
        lines.append(
            f"  bounded by: rank {self.bounding_rank} (finishes last), "
            f"transport {self.bounding_transport}, "
            f"round {self.bounding_round}"
        )
        return "\n".join(lines)


def _round_of(tree: TraceTree, span: Span) -> Optional[int]:
    enclosing = tree.enclosing(span, cat="round")
    if enclosing is None:
        return None
    idx = enclosing.attrs.get("idx")
    return int(idx) if idx is not None else None


def critical_path(tree: TraceTree,
                  collective: Optional[str] = None,
                  params=None) -> CriticalPath:
    """Extract the bounding message chain from a span tree.

    With ``collective`` given, only messages enclosed by a span of
    that name count, and the path ends where the slowest rank's
    instance of that collective closes; otherwise the whole tree's
    message graph is used.  With ``params`` (the world's
    :class:`~repro.machine.params.MachineParams`) each hop is
    annotated with the facility it mostly waited on (``waited_on``).
    """
    messages = [s for s in tree if s.cat == "message" and s.t1 is not None]
    if collective is not None:
        scopes = [s for s in tree.find(name=collective, cat="collective")]
        if not scopes:
            raise ValueError(
                f"no collective spans named {collective!r} in this trace"
            )
        messages = [
            m for m in messages
            if tree.enclosing(m, name=collective, cat="collective") is not None
        ]

    # Index arrivals per destination rank, by delivery time.
    arrivals: Dict[int, List[Span]] = {}
    for m in messages:
        arrivals.setdefault(m.attrs.get("dst", m.rank), []).append(m)
    for chain in arrivals.values():
        chain.sort(key=lambda m: m.t1)

    def last_arrival(rank: int, horizon: float) -> float:
        times = [m.t1 for m in arrivals.get(rank, ())
                 if m.t1 <= horizon + _EPS]
        return max(times, default=float("-inf"))

    if collective is not None:
        # The slowest instance; on exact ties (lock-step collectives)
        # prefer a rank that actually waited on an arrival, so the walk
        # has a chain to follow.
        end_span = max(scopes,
                       key=lambda s: (s.t1, last_arrival(s.rank, s.t1)))
        end_rank, end_time = end_span.rank, end_span.t1
    elif messages:
        last = max(messages, key=lambda m: m.t1)
        end_rank, end_time = last.attrs.get("dst", last.rank), last.t1
    else:
        return CriticalPath(collective=collective)

    hops: List[Hop] = []
    rank, horizon = end_rank, end_time
    for _ in range(len(messages) + 1):
        candidates = arrivals.get(rank, ())
        best = None
        for m in candidates:
            if m.t1 <= horizon + _EPS:
                best = m  # sorted ascending: last match is the latest
        if best is None:
            break
        hops.append(Hop(
            src=best.attrs.get("src", best.rank),
            dst=best.attrs.get("dst", best.rank),
            t0=best.t0,
            t1=best.t1,
            nbytes=int(best.attrs.get("nbytes", 0)),
            transport=str(best.attrs.get("transport", "?")),
            round=_round_of(tree, best),
            collective=collective,
        ))
        # Continue upstream of the sender, strictly before the send.
        rank, horizon = hops[-1].src, hops[-1].t0 - _EPS
    hops.reverse()
    if params is not None:
        from .attribution import annotate_hops

        annotate_hops(hops, params)
    return CriticalPath(hops=hops, end_rank=end_rank, end_time=end_time,
                        collective=collective)
