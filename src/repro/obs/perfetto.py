"""Chrome/Perfetto trace-event export.

:func:`to_perfetto` turns a :class:`~repro.obs.timeline.TraceTree`
into the Trace Event Format JSON object that ``ui.perfetto.dev`` and
``chrome://tracing`` load directly: one process per node, one thread
per rank, ``"X"`` complete events for spans, and ``"s"``/``"f"`` flow
arrows binding each message's send to its delivery.

Timestamps are microseconds (the format's unit); span times arrive in
simulated seconds.

:func:`validate_chrome_trace` is the schema check CI runs on exported
files — structural, dependency-free, and strict about the fields the
viewers actually require.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .timeline import TraceTree

#: event phases we emit / accept
_PHASES = {"X", "i", "s", "f", "M", "B", "E", "C"}


def to_perfetto(tree: TraceTree,
                node_of: Optional[Dict[int, int]] = None,
                resources: Optional[Any] = None) -> Dict[str, Any]:
    """Export a span tree as a Trace Event Format object.

    ``node_of`` maps rank → node id so ranks group into per-node
    process tracks; without it everything lands in process 0.
    ``resources`` (a :class:`~repro.obs.resources.ResourceMonitor`)
    adds ``"C"`` counter tracks — per-node pipe busy edges and queue
    depth — alongside the span slices.
    """
    node_of = node_of or {}
    events: List[Dict[str, Any]] = []

    def pid(rank: int) -> int:
        return int(node_of.get(rank, 0))

    # Track metadata: name the process/thread rows.
    for node in sorted({pid(r) for r in tree.ranks()}):
        events.append({
            "name": "process_name", "ph": "M", "pid": node, "tid": 0,
            "args": {"name": f"node{node}"},
        })
    for rank in tree.ranks():
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid(rank), "tid": rank,
            "args": {"name": f"rank {rank}"},
        })
        events.append({
            "name": "thread_sort_index", "ph": "M", "pid": pid(rank),
            "tid": rank, "args": {"sort_index": rank},
        })

    for span in tree:
        if span.t1 is None:  # pragma: no cover - trees hold closed spans
            continue
        args = {k: v for k, v in span.attrs.items()}
        events.append({
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": span.t0 * 1e6,
            "dur": (span.t1 - span.t0) * 1e6,
            "pid": pid(span.rank),
            "tid": span.rank,
            "args": args,
        })
        if span.cat == "message":
            # Flow arrow from the send slice to the destination rank.
            src = span.attrs.get("src", span.rank)
            dst = span.attrs.get("dst", span.rank)
            events.append({
                "name": "msg", "cat": "flow", "ph": "s", "id": span.sid,
                "ts": span.t0 * 1e6, "pid": pid(src), "tid": src,
            })
            events.append({
                "name": "msg", "cat": "flow", "ph": "f", "bp": "e",
                "id": span.sid, "ts": span.t1 * 1e6, "pid": pid(dst),
                "tid": dst,
            })

    if resources is not None:
        events.extend(counter_events(resources))

    return {"traceEvents": events, "displayTimeUnit": "ns"}


def counter_events(resources: Any,
                   max_edges_per_track: int = 4000) -> List[Dict[str, Any]]:
    """``"C"`` counter-track events from a ResourceMonitor.

    One busy track (0/1 edges per busy interval) and one queue track
    per facility, grouped under the owning node's process row.  Long
    runs are downsampled to ``max_edges_per_track`` edges per track so
    full-scale traces stay loadable.
    """
    out: List[Dict[str, Any]] = []
    for tl in resources.timelines:
        pid = int(tl.node) if tl.node is not None else 0
        track = tl.name
        intervals = tl.intervals
        if len(intervals) > max_edges_per_track // 2:
            step = -(-len(intervals) * 2 // max_edges_per_track)
            intervals = intervals[::step]
        for start, end in intervals:
            out.append({"name": f"{track} busy", "ph": "C",
                        "ts": start * 1e6, "pid": pid, "tid": 0,
                        "args": {"busy": 1}})
            out.append({"name": f"{track} busy", "ph": "C",
                        "ts": end * 1e6, "pid": pid, "tid": 0,
                        "args": {"busy": 0}})
        samples = tl.queue_samples
        if len(samples) > max_edges_per_track:
            step = -(-len(samples) // max_edges_per_track)
            samples = samples[::step]
        for sample in samples:
            out.append({"name": f"{track} queue", "ph": "C",
                        "ts": sample[0] * 1e6, "pid": pid, "tid": 0,
                        "args": {"depth": sample[1]}})
    return out


def write_trace(obj: Dict[str, Any], path: str) -> Dict[str, Any]:
    """Write an already-exported trace object to ``path``.

    Shared by the sim-time exporter below and the host-telemetry
    exporter (:meth:`repro.obs.host.HostReport.to_perfetto`) so both
    kinds of trace land on disk the same way.
    """
    with open(path, "w") as fh:
        json.dump(obj, fh)
    return obj


def write_perfetto(tree: TraceTree, path: str,
                   node_of: Optional[Dict[int, int]] = None,
                   resources: Optional[Any] = None) -> Dict[str, Any]:
    """Export and write ``path``; returns the exported object."""
    return write_trace(
        to_perfetto(tree, node_of=node_of, resources=resources), path)


def validate_chrome_trace(obj: Any) -> int:
    """Validate Trace Event Format structure; returns the event count.

    Accepts the JSON-object form (``{"traceEvents": [...]}``) or the
    bare array form.  Raises :class:`ValueError` naming the first
    offending event — the contract the CI obs job enforces on exported
    ``trace.json`` artifacts.
    """
    if isinstance(obj, dict):
        events = obj.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("trace object must carry a 'traceEvents' list")
    elif isinstance(obj, list):
        events = obj
    else:
        raise ValueError(f"trace must be a dict or list, got {type(obj).__name__}")

    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise ValueError(f"{where}: events must be objects")
        ph = ev.get("ph")
        if ph not in _PHASES:
            raise ValueError(f"{where}: bad phase {ph!r}")
        if not isinstance(ev.get("name"), str):
            raise ValueError(f"{where}: missing event name")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"{where}: bad timestamp {ts!r}")
        for key in ("pid", "tid"):
            if key in ev and not isinstance(ev[key], int):
                raise ValueError(f"{where}: {key} must be an integer")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: complete event needs dur >= 0")
        if ph in ("s", "f") and "id" not in ev:
            raise ValueError(f"{where}: flow event needs an id")
    json.dumps(events)  # must be serialisable as-is
    return len(events)
