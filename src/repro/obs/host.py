"""repro.obs.host — wall-clock telemetry for the *host* runtime.

Everything else in :mod:`repro.obs` measures **simulated** time: spans
on the virtual clock, resource timelines, LogGP attribution.  This
module measures the other clock — the wall-clock cost of running the
simulator itself — and answers the questions the sim-time layer
cannot: which shard stalls the window?  Is a forked worker idle?
What is the live cache hit ratio?  How long does one tuner candidate
really take?

Design constraints (see docs/OBSERVABILITY.md):

* **off by default, byte-identical when off** — every instrumentation
  point is one ``tracer is None`` check; host telemetry never touches
  simulation state, so enabled runs produce byte-identical *results*
  too (the differential suite asserts both);
* **fork-safe, exactly-once** — the host runtime forks workers
  (:mod:`repro.sim.parallel`, :mod:`repro.service.queue`) that inherit
  the active tracer *and its buffered events*.  Buffers are keyed by
  PID: the first write after a fork discards the inherited copy, so a
  child's :meth:`~HostTracer.drain` ships only events the child itself
  emitted, and the parent's :meth:`~HostTracer.absorb` merges them
  exactly once;
* **bounded** — per-event detail is capped (``max_events``); every
  span *always* folds into per-``(name, track)`` aggregates
  (count/total/max), so summaries stay exact when traces truncate.

Exports: :meth:`HostReport.to_perfetto` (workers/shards/cache/queue as
tracks, validated by the same
:func:`~repro.obs.perfetto.validate_chrome_trace` schema checker CI
runs on sim traces), :meth:`HostReport.metrics` (the
:class:`~repro.obs.metrics.Metrics` registry → snapshot JSON), and
:func:`jsonl_event_writer` (the live JSONL progress stream
``python -m repro serve --events`` and ``sweep --progress`` emit).
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, TextIO, Tuple

from .metrics import Metrics

#: span-detail cap per tracer buffer; aggregates are never capped
MAX_EVENTS = 200_000

#: event kinds a buffer holds ("X" = span, "i" = instant — the Trace
#: Event Format phases they export as)
_SPAN, _INSTANT = "X", "i"


class _Buf:
    """One PID's worth of telemetry state."""

    __slots__ = ("pid", "events", "agg", "counters", "dropped")

    def __init__(self, pid: int) -> None:
        self.pid = pid
        #: capped detail: (kind, name, cat, track, t0, t1, pid, args)
        self.events: List[tuple] = []
        #: (name, track) -> [count, total_s, max_s] — always exact
        self.agg: Dict[Tuple[str, str], List[float]] = {}
        #: (name, sorted label items) -> value
        self.counters: Dict[Tuple[str, tuple], float] = {}
        self.dropped = 0


class HostTracer:
    """Fork-safe wall-clock span/counter recorder.

    One tracer is shared by the whole process tree of a run: activate
    it in the parent (:func:`tracing`), fork freely, and ship each
    child's :meth:`drain` payload home over whatever pipe the worker
    protocol already has — :meth:`absorb` merges it into the parent's
    buffer.  All times come from ``clock`` (default
    :func:`time.perf_counter` — on Linux a system-wide monotonic
    clock, so parent and child timestamps interleave correctly).
    """

    def __init__(self, max_events: int = MAX_EVENTS,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.max_events = max_events
        self._buf = _Buf(os.getpid())

    # -- buffer access (the fork guard) --------------------------------
    def _mine(self) -> _Buf:
        """This PID's buffer — a fresh one on first touch after a fork,
        so inherited parent events are never re-shipped."""
        buf = self._buf
        if buf.pid != os.getpid():
            buf = self._buf = _Buf(os.getpid())
        return buf

    # -- writes --------------------------------------------------------
    def span_at(self, name: str, t0: float, t1: float, track: str = "main",
                cat: str = "host", **args: Any) -> None:
        """Record one completed wall-clock span ``[t0, t1]``."""
        buf = self._mine()
        dur = t1 - t0
        agg = buf.agg.get((name, track))
        if agg is None:
            buf.agg[(name, track)] = [1, dur, dur]
        else:
            agg[0] += 1
            agg[1] += dur
            if dur > agg[2]:
                agg[2] = dur
        if len(buf.events) < self.max_events:
            buf.events.append((_SPAN, name, cat, track, t0, t1, buf.pid,
                               args or None))
        else:
            buf.dropped += 1

    @contextmanager
    def span(self, name: str, track: str = "main", cat: str = "host",
             **args: Any) -> Iterator[None]:
        """``with tracer.span("cache.get"): ...`` convenience wrapper."""
        t0 = self.clock()
        try:
            yield
        finally:
            self.span_at(name, t0, self.clock(), track=track, cat=cat,
                         **args)

    def instant(self, name: str, track: str = "main", cat: str = "host",
                **args: Any) -> None:
        """Record a zero-duration marker at the current instant."""
        buf = self._mine()
        if len(buf.events) < self.max_events:
            now = self.clock()
            buf.events.append((_INSTANT, name, cat, track, now, now,
                               buf.pid, args or None))
        else:
            buf.dropped += 1

    def count(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Add ``value`` to a labelled counter."""
        buf = self._mine()
        key = (name, tuple(sorted(labels.items())))
        buf.counters[key] = buf.counters.get(key, 0.0) + value

    # -- cross-process shipping ----------------------------------------
    def drain(self) -> Dict[str, Any]:
        """Detach and return this PID's buffer as a picklable payload.

        Called in a forked worker just before it ships results home;
        the buffer is cleared, so a second drain ships nothing twice.
        """
        buf = self._mine()
        self._buf = _Buf(buf.pid)
        return {
            "pid": buf.pid,
            "events": buf.events,
            "agg": {k: list(v) for k, v in buf.agg.items()},
            "counters": dict(buf.counters),
            "dropped": buf.dropped,
        }

    def absorb(self, payload: Optional[Dict[str, Any]]) -> None:
        """Merge a child's :meth:`drain` payload into this buffer."""
        if not payload:
            return
        buf = self._mine()
        room = self.max_events - len(buf.events)
        events = payload["events"]
        buf.events.extend(events[:room])
        buf.dropped += payload["dropped"] + max(0, len(events) - room)
        for key, (count, total, peak) in payload["agg"].items():
            key = tuple(key)
            agg = buf.agg.get(key)
            if agg is None:
                buf.agg[key] = [count, total, peak]
            else:
                agg[0] += count
                agg[1] += total
                if peak > agg[2]:
                    agg[2] = peak
        for key, value in payload["counters"].items():
            key = (key[0], tuple(tuple(i) for i in key[1]))
            buf.counters[key] = buf.counters.get(key, 0.0) + value

    # -- reads ---------------------------------------------------------
    def events(self) -> List[tuple]:
        """All buffered events, merged in wall-timestamp order."""
        return sorted(self._mine().events, key=lambda e: (e[4], e[5]))

    def aggregates(self) -> Dict[Tuple[str, str], List[float]]:
        """(name, track) → [count, total_s, max_s], exact (uncapped)."""
        return {k: list(v) for k, v in self._mine().agg.items()}

    def counters(self) -> Dict[Tuple[str, tuple], float]:
        return dict(self._mine().counters)

    @property
    def dropped(self) -> int:
        return self._mine().dropped


# -- activation ---------------------------------------------------------
#: the process-wide active tracer (inherited across fork); None = off
_ACTIVE: Optional[HostTracer] = None


def active() -> Optional[HostTracer]:
    """The active tracer, or None when host telemetry is off (default).

    Every instrumentation point in the host runtime calls this and
    does nothing when it returns None — the disabled path is one
    global read per instrumented operation.
    """
    return _ACTIVE


def enable(tracer: Optional[HostTracer] = None) -> HostTracer:
    """Turn host telemetry on process-wide; returns the tracer."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else HostTracer()
    return _ACTIVE


def disable() -> None:
    """Turn host telemetry off."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def tracing(tracer: Optional[HostTracer] = None) -> Iterator[HostTracer]:
    """Scope host telemetry to a ``with`` block (restores the previous
    tracer on exit, so nesting and tests compose)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer if tracer is not None else HostTracer()
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


def jsonl_event_writer(stream: TextIO, **extra: Any) -> Callable[[Dict], None]:
    """A progress callback that writes one JSON line per event.

    The live stream ``python -m repro serve --events`` interleaves
    into its stdout and ``sweep --progress`` emits on stderr: each
    queue lifecycle event (hit/dedup/miss/start/done) becomes
    ``{"event": "progress", ...}``.
    """
    def write(event: Dict[str, Any]) -> None:
        print(json.dumps({"event": "progress", **extra, **event},
                         sort_keys=True), file=stream, flush=True)
    return write


# -- reporting ----------------------------------------------------------
class HostReport:
    """Summaries, exports and the CLI text for one tracer's telemetry."""

    #: bump on any incompatible change to :meth:`as_dict`
    SCHEMA = 1

    def __init__(self, tracer: HostTracer) -> None:
        self.tracer = tracer

    # -- engine --------------------------------------------------------
    def shard_breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-shard window-advance wall cost: the stall table.

        Keys are shard tracks (``shard0``…); ``busy_s`` is the total
        wall time that shard's queue advances took across every
        window — the shard with the largest total is the one stalling
        conservative windows (ROADMAP item 1's partitioning input).
        """
        out = {}
        for (name, track), (count, total, peak) in \
                self.tracer.aggregates().items():
            if name == "shard.advance":
                out[track] = {"advances": count, "busy_s": total,
                              "max_s": peak}
        return dict(sorted(out.items()))

    def slowest_shard(self) -> Optional[str]:
        """The shard track with the largest total advance wall time."""
        shards = self.shard_breakdown()
        if not shards:
            return None
        return max(shards, key=lambda t: shards[t]["busy_s"])

    def worker_utilization(self) -> Dict[str, Dict[str, float]]:
        """Per forked engine worker: busy vs idle wall time."""
        busy: Dict[str, List[float]] = {}
        idle: Dict[str, List[float]] = {}
        for (name, track), agg in self.tracer.aggregates().items():
            if name == "worker.window":
                busy[track] = agg
            elif name == "worker.idle":
                idle[track] = agg
        out = {}
        for track in sorted(set(busy) | set(idle)):
            b = busy.get(track, [0, 0.0, 0.0])[1]
            i = idle.get(track, [0, 0.0, 0.0])[1]
            wall = b + i
            out[track] = {"busy_s": b, "idle_s": i,
                          "windows": busy.get(track, [0])[0],
                          "utilization": b / wall if wall else 0.0}
        return out

    def window_summary(self) -> Dict[str, Any]:
        agg = self.tracer.aggregates()
        windows = agg.get(("engine.window", "engine"))
        rounds = agg.get(("coord.round", "coordinator"))
        counters = self.tracer.counters()
        crossings = sum(v for (n, _items), v in counters.items()
                        if n == "cross_worker_msgs_total")
        return {
            "windows": windows[0] if windows else 0,
            "window_wall_s": windows[1] if windows else 0.0,
            "coordinator_rounds": rounds[0] if rounds else 0,
            "coordinator_wall_s": rounds[1] if rounds else 0.0,
            "cross_worker_msgs": int(crossings),
        }

    # -- service -------------------------------------------------------
    def _counter_by(self, name: str, label: str) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for (n, items), value in self.tracer.counters().items():
            if n != name:
                continue
            labels = dict(items)
            if label in labels:
                key = str(labels[label])
                out[key] = out.get(key, 0.0) + value
        return out

    def cache_summary(self) -> Dict[str, Any]:
        """Cache op counts by outcome + wall cost of the op spans."""
        by_outcome = self._counter_by("cache_ops_total", "outcome")
        agg = self.tracer.aggregates()
        gets = agg.get(("cache.get", "cache"), [0, 0.0, 0.0])
        puts = agg.get(("cache.put", "cache"), [0, 0.0, 0.0])
        hits = by_outcome.get("hit", 0.0)
        reads = sum(v for k, v in by_outcome.items() if k != "write")
        return {
            "ops": {k: int(v) for k, v in sorted(by_outcome.items())},
            "hit_ratio": hits / reads if reads else None,
            "get_wall_s": gets[1],
            "put_wall_s": puts[1],
        }

    def queue_summary(self) -> Dict[str, Any]:
        """Sweep-queue lifecycle counts (submit→dedup→start→done)."""
        phases = self._counter_by("queue_cells_total", "phase")
        return {k: int(v) for k, v in sorted(phases.items())}

    def bench_summary(self) -> Dict[str, Any]:
        cells = self.tracer.aggregates().get(("bench.cell", "bench"))
        if not cells:
            return {"cells": 0, "wall_s": 0.0, "max_s": 0.0}
        return {"cells": cells[0], "wall_s": cells[1], "max_s": cells[2]}

    def tuner_summary(self) -> Dict[str, Any]:
        agg = self.tracer.aggregates()
        cand = agg.get(("tuner.candidate", "tuner"), [0, 0.0, 0.0])
        batch = agg.get(("tuner.batch", "tuner"), [0, 0.0, 0.0])
        return {"candidates": cand[0], "candidate_wall_s": cand[1],
                "max_candidate_s": cand[2],
                "batches": batch[0], "batch_wall_s": batch[1]}

    # -- exports -------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe summary (the ``host_telemetry.json`` artifact the
        report's host section ingests)."""
        return {
            "schema": self.SCHEMA,
            "clock": "wall",
            "engine": self.window_summary(),
            "shards": self.shard_breakdown(),
            "slowest_shard": self.slowest_shard(),
            "workers": self.worker_utilization(),
            "cache": self.cache_summary(),
            "queue": self.queue_summary(),
            "bench": self.bench_summary(),
            "tuner": self.tuner_summary(),
            "events": len(self.tracer.events()),
            "dropped": self.tracer.dropped,
        }

    def metrics(self) -> Metrics:
        """The telemetry folded into a Metrics registry.

        Span aggregates become ``host_span_seconds_total`` /
        ``host_span_count`` counters and ``host_span_max_seconds``
        gauges labelled by span name and track; host counters carry
        over under their own names.  ``registry.snapshot()`` is the
        metrics-snapshot JSON export.
        """
        m = Metrics()
        for (name, track), (count, total, peak) in sorted(
                self.tracer.aggregates().items()):
            m.inc("host_span_count", count, span=name, track=track)
            m.inc("host_span_seconds_total", total, span=name, track=track)
            m.set_gauge("host_span_max_seconds", peak, span=name,
                        track=track)
        for (name, items), value in sorted(self.tracer.counters().items()):
            m.inc(name, value, **dict(items))
        return m

    def to_perfetto(self) -> Dict[str, Any]:
        """The host trace as a Trace Event Format object.

        One Perfetto *process* row per OS process (parent first), one
        *thread* row per telemetry track (engine, shards, workers,
        cache, queue, bench, tuner), spans as ``"X"`` and markers as
        ``"i"`` events.  Validates against
        :func:`~repro.obs.perfetto.validate_chrome_trace` — the same
        schema checker the sim-time traces go through.
        """
        events = self.tracer.events()
        out: List[Dict[str, Any]] = []
        pids: Dict[int, int] = {}
        tids: Dict[Tuple[int, str], int] = {}
        # Parent (this process) is always process row 0.
        pids[os.getpid()] = 0
        for ev in events:
            pids.setdefault(ev[6], len(pids))
        for os_pid, row in sorted(pids.items(), key=lambda kv: kv[1]):
            role = "host" if row == 0 else f"forked worker pid {os_pid}"
            out.append({"name": "process_name", "ph": "M", "pid": row,
                        "tid": 0, "args": {"name": role}})
        t_zero = events[0][4] if events else 0.0
        for kind, name, cat, track, t0, t1, os_pid, args in events:
            pid = pids[os_pid]
            tid = tids.setdefault(
                (pid, track),
                sum(1 for key in tids if key[0] == pid))
            ev: Dict[str, Any] = {
                "name": name, "cat": cat, "ph": kind,
                "ts": max(0.0, (t0 - t_zero) * 1e6),
                "pid": pid, "tid": tid,
            }
            if kind == _SPAN:
                ev["dur"] = max(0.0, (t1 - t0) * 1e6)
            if args:
                ev["args"] = dict(args)
            out.append(ev)
        for (pid, track), tid in sorted(tids.items()):
            out.append({"name": "thread_name", "ph": "M", "pid": pid,
                        "tid": tid, "args": {"name": track}})
            out.append({"name": "thread_sort_index", "ph": "M", "pid": pid,
                        "tid": tid, "args": {"sort_index": tid}})
        return {"traceEvents": out, "displayTimeUnit": "ns"}

    def to_jsonl(self) -> str:
        """Every buffered event as one JSON line (the offline form of
        the live stream)."""
        lines = []
        for kind, name, cat, track, t0, t1, pid, args in \
                self.tracer.events():
            lines.append(json.dumps({
                "event": "span" if kind == _SPAN else "instant",
                "name": name, "cat": cat, "track": track,
                "t0": t0, "t1": t1, "pid": pid, "args": args or {},
            }, sort_keys=True))
        return "\n".join(lines)

    # -- CLI text ------------------------------------------------------
    def format(self) -> str:
        """The ``python -m repro telemetry`` summary."""
        lines = ["host telemetry (wall clock):"]
        eng = self.window_summary()
        if eng["windows"] or eng["coordinator_rounds"]:
            lines.append(
                f"  engine: {eng['windows']} windows "
                f"({eng['window_wall_s'] * 1e3:.1f} ms)"
                + (f", {eng['coordinator_rounds']} coordinator rounds "
                   f"({eng['coordinator_wall_s'] * 1e3:.1f} ms), "
                   f"{eng['cross_worker_msgs']} cross-worker msgs"
                   if eng["coordinator_rounds"] else ""))
        shards = self.shard_breakdown()
        if shards:
            slowest = self.slowest_shard()
            lines.append("  window-stall breakdown by shard:")
            for track, row in shards.items():
                mark = "  <- slowest" if track == slowest else ""
                lines.append(
                    f"    {track:8s} {row['busy_s'] * 1e3:9.1f} ms over "
                    f"{row['advances']} advances "
                    f"(max {row['max_s'] * 1e3:.2f} ms){mark}")
        workers = self.worker_utilization()
        if workers:
            lines.append("  worker utilization:")
            for track, row in workers.items():
                lines.append(
                    f"    {track:8s} busy {row['busy_s'] * 1e3:9.1f} ms  "
                    f"idle {row['idle_s'] * 1e3:9.1f} ms  "
                    f"util {row['utilization']:6.1%}")
        cache = self.cache_summary()
        if cache["ops"]:
            ratio = (f", hit ratio {cache['hit_ratio']:.1%}"
                     if cache["hit_ratio"] is not None else "")
            ops = ", ".join(f"{k}={v}" for k, v in cache["ops"].items())
            lines.append(f"  cache: {ops}{ratio} "
                         f"(get {cache['get_wall_s'] * 1e3:.1f} ms, "
                         f"put {cache['put_wall_s'] * 1e3:.1f} ms)")
        queue = self.queue_summary()
        if queue:
            lines.append("  queue: " + ", ".join(
                f"{k}={v}" for k, v in queue.items()))
        bench = self.bench_summary()
        if bench["cells"]:
            lines.append(
                f"  bench: {bench['cells']} cells in "
                f"{bench['wall_s']:.2f} s wall "
                f"(slowest {bench['max_s']:.2f} s)")
        tuner = self.tuner_summary()
        if tuner["candidates"] or tuner["batches"]:
            lines.append(
                f"  tuner: {tuner['candidates']} candidates in "
                f"{tuner['candidate_wall_s']:.2f} s"
                + (f", {tuner['batches']} pooled batches in "
                   f"{tuner['batch_wall_s']:.2f} s" if tuner["batches"]
                   else ""))
        if self.tracer.dropped:
            lines.append(f"  (detail cap hit: {self.tracer.dropped} "
                         "events dropped; aggregates stay exact)")
        if len(lines) == 1:
            lines.append("  (no events recorded)")
        return "\n".join(lines)
