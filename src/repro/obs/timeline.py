"""Per-rank timeline model over recorded spans.

A :class:`TraceTree` is an immutable snapshot of a run's closed spans
with parent/child indices built, so callers can ask structural
questions ("which rounds ran inside this collective?", "which
collective encloses this message?") without re-deriving the hierarchy
from timestamps.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union

from .spans import Span


class TraceTree:
    """Queryable span hierarchy (see :mod:`repro.obs`)."""

    def __init__(self, spans: List[Span]) -> None:
        #: every closed span, in (t0, sid) order
        self.spans: List[Span] = sorted(spans, key=lambda s: (s.t0, s.sid))
        self._by_id: Dict[int, Span] = {s.sid: s for s in self.spans}
        self._children: Dict[Optional[int], List[Span]] = {}
        for span in self.spans:
            self._children.setdefault(span.parent, []).append(span)

    # -- container protocol ---------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def get(self, sid: int) -> Span:
        """Span by id (KeyError for unknown/still-open ids)."""
        return self._by_id[sid]

    # -- structure -------------------------------------------------------
    def roots(self) -> List[Span]:
        """Top-level spans (no recorded parent)."""
        return [s for s in self.spans
                if s.parent is None or s.parent not in self._by_id]

    def children(self, span: Union[Span, int]) -> List[Span]:
        """Direct children of a span, in start order."""
        sid = span.sid if isinstance(span, Span) else span
        return list(self._children.get(sid, ()))

    def parent_of(self, span: Span) -> Optional[Span]:
        """The span's recorded parent (None at the top)."""
        if span.parent is None:
            return None
        return self._by_id.get(span.parent)

    def enclosing(self, span: Span, name: Optional[str] = None,
                  cat: Optional[str] = None) -> Optional[Span]:
        """Nearest ancestor matching ``name``/``cat`` (or None)."""
        cur = self.parent_of(span)
        while cur is not None:
            if ((name is None or cur.name == name)
                    and (cat is None or cur.cat == cat)):
                return cur
            cur = self.parent_of(cur)
        return None

    # -- queries ---------------------------------------------------------
    def find(self, name: Optional[str] = None, cat: Optional[str] = None,
             rank: Optional[int] = None) -> List[Span]:
        """Spans matching every given filter, in start order."""
        return [
            s for s in self.spans
            if (name is None or s.name == name)
            and (cat is None or s.cat == cat)
            and (rank is None or s.rank == rank)
        ]

    def by_rank(self, rank: int) -> List[Span]:
        """All of one rank's spans, in start order."""
        return [s for s in self.spans if s.rank == rank]

    def ranks(self) -> List[int]:
        """Every rank with at least one span."""
        return sorted({s.rank for s in self.spans})

    @property
    def start_time(self) -> float:
        """Earliest span start (0.0 for an empty tree)."""
        return self.spans[0].t0 if self.spans else 0.0

    @property
    def end_time(self) -> float:
        """Latest span end (0.0 for an empty tree)."""
        return max((s.t1 for s in self.spans if s.t1 is not None),
                   default=0.0)

    # -- reporting -------------------------------------------------------
    def render(self, max_spans: int = 64) -> str:
        """ASCII tree (rank-major, indentation = nesting) for the CLI."""
        lines: List[str] = []

        def emit(span: Span, depth: int) -> None:
            if len(lines) >= max_spans:
                return
            us = span.duration * 1e6
            lines.append(
                f"  {'  ' * depth}{span.cat}:{span.name} "
                f"@{span.t0 * 1e6:.2f}us +{us:.2f}us"
            )
            for child in self.children(span):
                emit(child, depth + 1)

        for rank in self.ranks():
            if len(lines) >= max_spans:
                break
            lines.append(f"rank {rank}:")
            for root in self.roots():
                if root.rank == rank:
                    emit(root, 1)
        total = len(self.spans)
        if total > max_spans:
            lines.append(f"  ... ({total} spans total)")
        return "\n".join(lines)
