"""repro.obs — span-based observability for simulated runs.

The layer the flat :class:`~repro.sim.trace.Tracer` cannot be: where
the tracer keeps a list of instants, this subsystem records
**hierarchical spans** (``run > collective > round > message``) on
every rank's timeline, derives a **metrics registry** from them
(bytes by transport, retransmits, sync waits, NIC busy), exports
**Chrome/Perfetto JSON** loadable in ``ui.perfetto.dev``, and extracts
the **critical path** over the message-dependency graph — which rank,
round and transport actually bound a collective.

Attach via the high-level API (:class:`repro.api.Session` with
tracing on) or directly::

    from repro.obs import SpanRecorder
    recorder = SpanRecorder()
    world.attach_obs(recorder)
    ... run ...
    tree = recorder.tree()
    trace_json = to_perfetto(tree)
    path = critical_path(tree, collective="allgather")

With no recorder attached every instrumentation point is a single
``is None`` check — the traced-off hot path stays as fast as before
this subsystem existed.
"""

from . import host
from .attribution import COMPONENTS, Attribution, RoundAttribution, attribute
from .critical_path import CriticalPath, Hop, critical_path
from .host import HostReport, HostTracer, jsonl_event_writer
from .metrics import CardinalityError, Histogram, Metrics
from .perfetto import (counter_events, to_perfetto, validate_chrome_trace,
                       write_perfetto, write_trace)
from .resources import ResourceMonitor, ResourceTimeline
from .spans import NULL_SPAN, Span, SpanRecorder
from .timeline import TraceTree

__all__ = [
    "Attribution",
    "COMPONENTS",
    "CardinalityError",
    "CriticalPath",
    "Histogram",
    "Hop",
    "HostReport",
    "HostTracer",
    "Metrics",
    "NULL_SPAN",
    "ResourceMonitor",
    "ResourceTimeline",
    "RoundAttribution",
    "Span",
    "SpanRecorder",
    "TraceTree",
    "attribute",
    "counter_events",
    "critical_path",
    "host",
    "jsonl_event_writer",
    "to_perfetto",
    "validate_chrome_trace",
    "write_perfetto",
    "write_trace",
]
