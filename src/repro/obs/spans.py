"""Hierarchical span recording over the simulation clock.

A :class:`Span` is a named interval of simulated time on one rank's
timeline (``run > collective > round > message``); a
:class:`SpanRecorder` maintains a per-rank open-span stack so nesting
falls out of call structure, exactly like any tracing SDK — except the
clock is the :class:`~repro.sim.engine.Simulator`'s virtual clock, so
spans are deterministic and free of wall-time noise.

Two kinds of spans exist:

* **stack spans** (``run``/``collective``/``round``/``sync``): opened
  and closed by the same rank's coroutine, properly nested — use
  :meth:`SpanRecorder.span` as a ``with`` block around ``yield from``;
* **async spans** (``message``/``retransmit``): opened by one rank and
  closed by a completion callback arbitrarily later; they take their
  parent from the opener's stack but never sit on it.

When no recorder is attached (``world.obs is None``) every
instrumentation site short-circuits on one attribute check, keeping
the traced-off hot path identical to before the subsystem existed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .metrics import Metrics


@dataclass
class Span:
    """One named interval on a rank's timeline."""

    sid: int
    parent: Optional[int]
    rank: int
    name: str
    cat: str
    t0: float
    t1: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.t1 is not None

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (0 while open)."""
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.t1:.3e}" if self.t1 is not None else "open"
        return (f"<Span {self.sid} {self.cat}:{self.name} rank={self.rank} "
                f"[{self.t0:.3e}, {end}]>")


class _NullSpan:
    """``with``-compatible no-op used when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


#: the shared no-op handle (one instance, zero allocation per use)
NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Closes its span on ``with``-block exit."""

    __slots__ = ("recorder", "sid")

    def __init__(self, recorder: "SpanRecorder", sid: int) -> None:
        self.recorder = recorder
        self.sid = sid

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.recorder.close(self.sid)
        return False


class SpanRecorder:
    """Collects spans and derives metrics from them.

    Bind to a simulator before recording (``World.attach_obs`` does
    this); ``metrics`` may be shared with other recorders.
    """

    def __init__(self, metrics: Optional[Metrics] = None) -> None:
        self.metrics = metrics if metrics is not None else Metrics()
        self._sim = None
        #: closed spans, in close order
        self.spans: List[Span] = []
        self._open: Dict[int, Span] = {}
        self._stacks: Dict[int, List[int]] = {}
        self._next_sid = 0

    def bind(self, sim) -> None:
        """Use ``sim``'s clock for span timestamps."""
        self._sim = sim

    @property
    def now(self) -> float:
        return self._sim.now if self._sim is not None else 0.0

    # -- recording -------------------------------------------------------
    def open(self, rank: int, name: str, cat: str = "phase",
             on_stack: bool = True, **attrs: Any) -> int:
        """Open a span on ``rank``; returns its id for :meth:`close`.

        The parent is the rank's innermost open stack span.  Async
        spans (``on_stack=False``) still parent under the opener's
        stack but are closed by callbacks, not block exit.
        """
        stack = self._stacks.setdefault(rank, [])
        parent = stack[-1] if stack else None
        sid = self._next_sid
        self._next_sid += 1
        span = Span(sid, parent, rank, name, cat, self.now, None, attrs)
        self._open[sid] = span
        if on_stack:
            stack.append(sid)
        return sid

    def close(self, sid: int, **attrs: Any) -> Span:
        """Close a span (idempotence is a bug: close exactly once)."""
        span = self._open.pop(sid)
        span.t1 = self.now
        if attrs:
            span.attrs.update(attrs)
        stack = self._stacks.get(span.rank)
        if stack and sid in stack:
            stack.remove(sid)
        self.spans.append(span)
        self._derive_metrics(span)
        return span

    def span(self, rank: int, name: str, cat: str = "phase",
             **attrs: Any) -> _SpanHandle:
        """Open a stack span, closed on ``with``-block exit."""
        return _SpanHandle(self, self.open(rank, name, cat, **attrs))

    def open_message(self, src: int, dst: int, nbytes: int,
                     transport: str, tag: int) -> int:
        """Open the async span covering send-post → delivery."""
        return self.open(
            src, f"msg→{dst}", cat="message", on_stack=False,
            src=src, dst=dst, nbytes=nbytes, transport=transport, tag=tag,
        )

    def _derive_metrics(self, span: Span) -> None:
        m = self.metrics
        if span.cat == "message":
            transport = span.attrs.get("transport", "?")
            m.inc("messages_total", transport=transport)
            m.inc("bytes_total", span.attrs.get("nbytes", 0),
                  transport=transport)
            m.observe("message_seconds", span.duration, transport=transport)
        elif span.cat == "retransmit":
            m.inc("retransmits_total")
            m.observe("retransmit_backoff_seconds", span.duration)
        elif span.cat == "sync":
            m.inc("sync_waits_total", kind=span.name)
            m.observe("sync_wait_seconds", span.duration, kind=span.name)
        elif span.cat == "collective":
            m.inc("collectives_total", collective=span.name)
        elif span.cat == "recovery":
            m.inc("recoveries_total", collective=span.attrs.get("collective", "?"))
            m.observe("recovery_seconds", span.duration,
                      collective=span.attrs.get("collective", "?"))
        elif span.cat == "detect":
            m.observe("detection_seconds", span.duration)

    def current_context(self, rank: int):
        """(collective name, round idx) of ``rank``'s innermost open
        collective/round spans, or ``(None, None)`` outside one.

        The reliable transport uses this to stamp a
        :class:`~repro.runtime.errors.DeliveryFailedError` with the
        collective call the dead flow belonged to.
        """
        collective = rnd = None
        for sid in reversed(self._stacks.get(rank, ())):
            span = self._open.get(sid)
            if span is None:
                continue
            if rnd is None and span.cat == "round":
                rnd = span.attrs.get("idx")
            if span.cat == "collective":
                collective = span.name
                break
        return collective, rnd

    # -- lifecycle -------------------------------------------------------
    def reset(self) -> None:
        """Wipe closed spans and metrics; in-flight spans survive.

        Benchmark warmup wipes call this at a hard-sync point so the
        measured iteration starts from a clean slate.
        """
        self.spans.clear()
        self.metrics.reset()

    def finalize(self, world) -> None:
        """Fold end-of-run hardware/protocol state into the metrics.

        Hardware busy times use the same canonical
        ``resource_busy_seconds{resource=...}`` series a
        :class:`~repro.obs.resources.ResourceMonitor` registers, so a
        world with both never double-names the counters.
        """
        stats = world.stats()
        m = self.metrics
        m.set_gauge("resource_busy_seconds", stats["tx_busy_s"],
                    resource="nic_tx")
        m.set_gauge("resource_busy_seconds", stats["rx_busy_s"],
                    resource="nic_rx")
        m.set_gauge("resource_busy_seconds", stats["membus_busy_s"],
                    resource="membus")
        m.set_gauge("sim_events", stats["sim_events"])
        m.set_gauge("sim_time_seconds", stats["sim_time_s"])
        if "retransmits" in stats:
            m.set_gauge("transport_retransmits", stats["retransmits"])
            m.set_gauge("transport_acks", stats["acks"])
        if world.resources is not None:
            world.resources.register_gauges(m)

    def tree(self) -> "TraceTree":
        """Snapshot the closed spans as a queryable timeline."""
        from .timeline import TraceTree

        return TraceTree(list(self.spans))

    @property
    def open_spans(self) -> List[Span]:
        """Spans opened but not yet closed (diagnostics)."""
        return list(self._open.values())
