"""Model-vs-measured bottleneck attribution in LogGP terms.

Where did the collective's time go?  :func:`attribute` walks the
critical path of one collective (see :mod:`repro.obs.critical_path`)
and decomposes every segment of the bounding timeline — message hops
and the compute/sync gaps between them — into the cost model's terms
(COSTMODEL.md):

``L``
    wire / flag-visibility latency
``o``
    per-message CPU overhead (``inject_overhead`` / ``recv_overhead``
    and protocol handshakes)
``gG``
    pipe serialisation (``max(g, n*G)`` per pipe traversal)
``copy``
    payload memcpy time (bounce buffers, copy-in/copy-out, peer reads)
``sync``
    measured overlap with ``cat="sync"`` spans (barriers, flag waits,
    size synchronisation)
``compute``
    dispatch overhead and unattributed local work between messages
``queue``
    residual inside message hops — time the message waited behind
    other traffic in a FIFO pipe (or bus contention beyond the
    single-core copy model)

Allocation is *sequential-min*: each segment's model terms are taken
in priority order, each clipped to the time still unexplained, and
whatever remains lands in the residual bucket.  Components therefore
sum to the measured window **exactly** (the ±1 µs acceptance bound has
zero slack by construction); the unclipped model values are kept
separately so callers can diff model-predicted vs measured per term.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .critical_path import CriticalPath, Hop, critical_path
from .timeline import TraceTree

#: every attribution component, in report order
COMPONENTS = ("L", "o", "gG", "copy", "sync", "compute", "queue")

#: component → the facility it points the finger at
RESOURCE_OF = {
    "L": "wire",
    "o": "cpu",
    "gG": "nic_pipe",
    "copy": "membus",
    "sync": "peer",
    "compute": "cpu",
    "queue": "pipe_backlog",
}

#: transports that cross the fabric
_NET_NAMES = {"network", "reliable_network", "fabric_network"}


def _zero() -> Dict[str, float]:
    return {c: 0.0 for c in COMPONENTS}


def _hop_model(transport: str, nbytes: int, params) -> List[Tuple[str, float]]:
    """Model terms of one message hop (post → matchable), in
    allocation priority order."""
    nic = params.nic
    mem = params.memory
    dispatch = params.cpu.dispatch_overhead
    if transport in _NET_NAMES:
        if nbytes <= nic.eager_limit:
            return [
                ("compute", dispatch),
                ("o", nic.inject_overhead),
                ("copy", mem.copy_time(nbytes)),
                ("L", nic.latency),
                ("gG", 2.0 * nic.wire_time(nbytes)),
            ]
        return [
            ("compute", dispatch),
            ("o", nic.inject_overhead + nic.rendezvous_overhead),
            ("L", 3.0 * nic.latency),  # RTS/CTS round trip + payload
            ("gG", 2.0 * nic.wire_time(nbytes)),
        ]
    if transport == "loopback":
        return [("compute", dispatch)]
    # Intra-node: dispatch + transport-specific sender work + one
    # flag-visibility hop.  Sender-side copies (copy-in designs) count
    # as copy; the naive PiP size handshake counts as sync.
    terms: List[Tuple[str, float]] = [("compute", dispatch)]
    if transport == "pip+sizesync":
        from ..pip.sync import SizeSync

        terms.append(("sync", SizeSync(mem).cost()))
    elif transport == "posix_shmem":
        from ..transport.posix_shmem import PosixShmemTransport as _T

        cells = max(1, -(-nbytes // _T.CELL_SIZE))
        terms.append(("compute", cells * _T.CELL_OVERHEAD))
        terms.append(("copy", mem.copy_time(nbytes)))
    elif transport == "cma":
        from ..transport.cma import CmaTransport as _T

        terms.append(("compute", _T.HEADER_COST))
    elif transport == "xpmem":
        terms.append(("compute", 1.0e-7))  # header publish
    terms.append(("L", mem.flag_latency))
    return terms


def _recv_model(transport: str, nbytes: int, params) -> List[Tuple[str, float]]:
    """Receiver-side model terms paid after a message matches."""
    nic = params.nic
    mem = params.memory
    terms: List[Tuple[str, float]] = [("compute", params.cpu.dispatch_overhead)]
    if transport in _NET_NAMES:
        terms.append(("o", nic.recv_overhead))
        if nbytes <= nic.eager_limit:
            terms.append(("copy", mem.copy_time(nbytes)))
    elif transport != "loopback":
        terms.append(("copy", mem.copy_time(nbytes)))
    return terms


def _allocate(duration: float, model: List[Tuple[str, float]],
              terms: Dict[str, float], model_acc: Dict[str, float],
              residual: str) -> None:
    """Sequential-min allocation of ``duration`` over ``model`` terms."""
    remaining = duration
    for comp, value in model:
        model_acc[comp] += value
        take = value if value < remaining else remaining
        if take > 0.0:
            terms[comp] += take
            remaining -= take
    if remaining > 0.0:
        terms[residual] += remaining


def _sync_overlap(tree: TraceTree, rank: int, t0: float, t1: float) -> float:
    """Measured seconds of ``[t0, t1]`` that rank spent in sync spans."""
    total = 0.0
    for span in tree.find(cat="sync", rank=rank):
        if span.t1 is None:
            continue
        lo = max(span.t0, t0)
        hi = min(span.t1, t1)
        if hi > lo:
            total += hi - lo
    return min(total, t1 - t0) if t1 > t0 else 0.0


@dataclass
class RoundAttribution:
    """One round's share of the critical-path timeline."""

    round: Optional[int]
    measured: float = 0.0
    terms: Dict[str, float] = field(default_factory=_zero)

    @property
    def dominant(self) -> str:
        return max(COMPONENTS, key=lambda c: self.terms[c])


@dataclass
class Attribution:
    """LogGP decomposition of one collective's measured window."""

    collective: str
    #: the measured window (first span open → slowest instance close)
    start_time: float
    end_time: float
    #: allocated seconds per component — sums to ``measured`` exactly
    terms: Dict[str, float]
    #: unclipped model-predicted seconds per component
    model: Dict[str, float]
    rounds: List[RoundAttribution]
    path: CriticalPath

    @property
    def measured(self) -> float:
        """The measured sim time being explained."""
        return self.end_time - self.start_time

    @property
    def dominant(self) -> str:
        """The component carrying the most measured time."""
        return max(COMPONENTS, key=lambda c: self.terms[c])

    @property
    def dominant_resource(self) -> str:
        """The facility the dominant term points at."""
        return RESOURCE_OF[self.dominant]

    def residual(self) -> float:
        """Sum of components minus measured time (0 by construction)."""
        return sum(self.terms.values()) - self.measured

    def check(self, tolerance: float = 1e-6) -> None:
        """Assert the decomposition explains the measured time."""
        err = self.residual()
        assert abs(err) <= tolerance, (
            f"{self.collective}: components sum to "
            f"{sum(self.terms.values()) * 1e6:.3f} us but measured "
            f"{self.measured * 1e6:.3f} us (err {err * 1e6:+.3f} us)"
        )

    def diff(self) -> Dict[str, float]:
        """Measured-minus-model seconds per component.

        Negative values mean the model over-predicts (the run pipelined
        or overlapped that cost); positive means unmodelled time
        (typically contention surfacing as ``queue``).
        """
        return {c: self.terms[c] - self.model[c] for c in COMPONENTS}

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe dump for BenchRecords."""
        return {
            "collective": self.collective,
            "measured_s": self.measured,
            "dominant": self.dominant,
            "dominant_resource": self.dominant_resource,
            "terms_s": dict(self.terms),
            "model_s": dict(self.model),
            "rounds": [
                {"round": r.round, "measured_s": r.measured,
                 "terms_s": dict(r.terms), "dominant": r.dominant}
                for r in self.rounds
            ],
        }

    def format(self) -> str:
        """Readable stack: per-term share of the measured window."""
        total = self.measured
        lines = [
            f"attribution ({self.collective}): "
            f"{total * 1e6:.2f} us measured, dominant {self.dominant} "
            f"({RESOURCE_OF[self.dominant]})"
        ]
        for comp in COMPONENTS:
            t = self.terms[comp]
            if t <= 0.0:
                continue
            share = t / total if total > 0 else 0.0
            delta = t - self.model[comp]
            lines.append(
                f"  {comp:8s} {t * 1e6:9.2f} us  {share:6.1%}  "
                f"(model {self.model[comp] * 1e6:.2f} us, "
                f"{delta * 1e6:+.2f})"
            )
        return "\n".join(lines)


def attribute(tree: TraceTree, collective: str, params,
              path: Optional[CriticalPath] = None) -> Attribution:
    """Decompose one collective's measured window along its critical path.

    Expects one instance of the collective per rank in the tree (the
    profiling pattern: warmup, ``recorder.reset()`` at a hard-sync
    point, then the measured call).  ``params`` is the world's
    :class:`~repro.machine.params.MachineParams`.
    """
    if path is None:
        path = critical_path(tree, collective)
    scopes = tree.find(name=collective, cat="collective")
    if not scopes:
        raise ValueError(f"no collective spans named {collective!r}")
    start = min(s.t0 for s in scopes)
    end = max(s.t1 for s in scopes if s.t1 is not None)
    if path.end_time > end:
        end = path.end_time

    terms = _zero()
    model = _zero()
    per_round: Dict[Optional[int], RoundAttribution] = {}

    def round_bucket(idx: Optional[int]) -> RoundAttribution:
        bucket = per_round.get(idx)
        if bucket is None:
            bucket = per_round[idx] = RoundAttribution(idx)
        return bucket

    def charge(duration: float, model_terms: List[Tuple[str, float]],
               residual: str, rank: int, t0: float,
               rnd: Optional[int], sync_first: bool = True) -> None:
        if duration <= 0.0:
            return
        seg_terms = _zero()
        seg_model = _zero()
        remaining = duration
        if sync_first:
            sync = _sync_overlap(tree, rank, t0, t0 + duration)
            if sync > 0.0:
                seg_terms["sync"] += sync
                remaining -= sync
        _allocate(remaining, model_terms, seg_terms, seg_model, residual)
        bucket = round_bucket(rnd)
        bucket.measured += duration
        for comp in COMPONENTS:
            terms[comp] += seg_terms[comp]
            model[comp] += seg_model[comp]
            bucket.terms[comp] += seg_terms[comp]

    hops = path.hops
    if not hops:
        # No message chain (single rank, or an intra-only pattern the
        # walk could not chain): the whole window is the end rank's
        # local work.
        rank = path.end_rank if path.end_rank >= 0 else 0
        charge(end - start, [], "compute", rank, start, None)
    else:
        # Lead-in: window start → first send post, on the first sender.
        charge(hops[0].t0 - start, [], "compute",
               hops[0].src, start, hops[0].round)
        for i, hop in enumerate(hops):
            # The hop itself: send post → matchable at the receiver.
            charge(hop.duration,
                   _hop_model(hop.transport, hop.nbytes, params),
                   "queue", hop.src, hop.t0, hop.round, sync_first=False)
            # The gap after arrival: receiver-side completion costs,
            # sync waits, local work until the next send (or window end).
            gap_end = hops[i + 1].t0 if i + 1 < len(hops) else end
            gap_rank = hops[i + 1].src if i + 1 < len(hops) else path.end_rank
            gap_round = hops[i + 1].round if i + 1 < len(hops) else hop.round
            charge(gap_end - hop.t1,
                   _recv_model(hop.transport, hop.nbytes, params),
                   "compute", gap_rank, hop.t1, gap_round)

    rounds = [per_round[idx] for idx in sorted(
        per_round, key=lambda r: (r is None, r))]
    annotate_hops(hops, params)
    return Attribution(collective=collective, start_time=start, end_time=end,
                       terms=terms, model=model, rounds=rounds, path=path)


def annotate_hops(hops: List[Hop], params) -> None:
    """Set each hop's ``waited_on`` to the facility its dominant
    allocated term points at (sequential-min over the hop model)."""
    for hop in hops:
        seg_terms = _zero()
        seg_model = _zero()
        _allocate(hop.duration, _hop_model(hop.transport, hop.nbytes, params),
                  seg_terms, seg_model, "queue")
        dominant = max(COMPONENTS, key=lambda c: seg_terms[c])
        hop.waited_on = RESOURCE_OF[dominant]
