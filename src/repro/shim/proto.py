"""mpi4py's pickle protocol over the buffer-protocol runtime.

mpi4py's lowercase methods (``bcast``/``gather``/``send``/…) move
arbitrary Python objects by pickling them; the simulated runtime only
moves byte buffers.  This module composes each object operation out of
:class:`~repro.api.VComm` buffer calls exactly the way mpi4py's own
implementation does over MPI: a fixed-size *size header* (one uint64)
so receivers can allocate, then the pickled payload, with vector
collectives carrying the ragged payloads.

Everything here is a generator meant to be driven on the simulator
thread (the shim bridge wraps each one in a ``shim.*`` span), so the
modeled cost of, say, ``comm.bcast(obj)`` is the modeled cost of the
size-header broadcast plus the payload broadcast under the session's
library/machine — the same two-phase shape real object broadcasts pay.

Reductions (``allreduce``/``reduce``) follow mpi4py's object-mode
semantics: gather the operands and fold them in rank order with the
Python-level op, which keeps results deterministic and supports any
picklable operand, not just arrays.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Sequence

import numpy as np

#: element dtype of the size header that precedes every ragged payload
_SIZE = np.uint64


def _dumps(obj: Any) -> np.ndarray:
    """Pickle ``obj`` into a writable uint8 array (the runtime's
    write-back idiom requires writable buffers even on the send side of
    in-place collectives like Bcast)."""
    return np.frombuffer(bytearray(pickle.dumps(obj)), dtype=np.uint8)


def _loads(payload: np.ndarray) -> Any:
    return pickle.loads(payload.tobytes())


def bcast(vcomm, obj: Any, root: int = 0):
    """Generator: object broadcast; returns the object on every rank
    (the root returns its own ``obj`` unchanged, as mpi4py does)."""
    me = vcomm.rank
    if me == root:
        payload = _dumps(obj)
        header = np.array([payload.size], dtype=_SIZE)
    else:
        payload = None
        header = np.zeros(1, dtype=_SIZE)
    yield from vcomm.Bcast(header, root=root)
    if me != root:
        payload = np.empty(int(header[0]), dtype=np.uint8)
    yield from vcomm.Bcast(payload, root=root)
    if me == root:
        return obj
    return _loads(payload)


def gather(vcomm, obj: Any, root: int = 0):
    """Generator: object gather; root returns the rank-ordered list,
    everyone else None."""
    me, size = vcomm.rank, vcomm.size
    payload = _dumps(obj)
    my_size = np.array([payload.size], dtype=_SIZE)
    sizes = np.empty(size, dtype=_SIZE) if me == root else None
    yield from vcomm.Gather(my_size, sizes, root=root)
    if me == root:
        counts = [int(n) for n in sizes]
        recv = np.empty(sum(counts), dtype=np.uint8)
    else:
        counts, recv = None, None
    yield from vcomm.Gatherv(payload, recv, counts=counts, root=root)
    if me != root:
        return None
    out, offset = [], 0
    for count in counts:
        out.append(_loads(recv[offset:offset + count]))
        offset += count
    return out


def scatter(vcomm, objs: "Sequence[Any]", root: int = 0):
    """Generator: object scatter; root supplies one object per rank,
    every rank returns its own."""
    me, size = vcomm.rank, vcomm.size
    if me == root:
        if len(objs) != size:
            raise ValueError(
                f"scatter expects exactly {size} items at the root, "
                f"got {len(objs)}")
        payloads = [_dumps(o) for o in objs]
        counts = [p.size for p in payloads]
        sizes = np.array(counts, dtype=_SIZE)
        send = np.concatenate(payloads)
    else:
        counts, sizes, send = None, None, None
    my_size = np.empty(1, dtype=_SIZE)
    yield from vcomm.Scatter(sizes, my_size, root=root)
    recv = np.empty(int(my_size[0]), dtype=np.uint8)
    yield from vcomm.Scatterv(send, counts, recv, root=root)
    return _loads(recv)


def allgather(vcomm, obj: Any):
    """Generator: object allgather; every rank returns the full
    rank-ordered list."""
    size = vcomm.size
    payload = _dumps(obj)
    my_size = np.array([payload.size], dtype=_SIZE)
    sizes = np.empty(size, dtype=_SIZE)
    yield from vcomm.Allgather(my_size, sizes)
    counts = [int(n) for n in sizes]
    recv = np.empty(sum(counts), dtype=np.uint8)
    yield from vcomm.Allgatherv(payload, recv, counts)
    out, offset = [], 0
    for count in counts:
        out.append(_loads(recv[offset:offset + count]))
        offset += count
    return out


def allreduce(vcomm, obj: Any, fold: Callable[[Any, Any], Any]):
    """Generator: object allreduce — allgather the operands, fold in
    rank order (mpi4py's object-mode semantics)."""
    operands = yield from allgather(vcomm, obj)
    acc = operands[0]
    for operand in operands[1:]:
        acc = fold(acc, operand)
    return acc


def reduce(vcomm, obj: Any, fold: Callable[[Any, Any], Any],
           root: int = 0):
    """Generator: object reduce — gather to root, fold in rank order;
    non-roots return None."""
    operands = yield from gather(vcomm, obj, root=root)
    if operands is None:
        return None
    acc = operands[0]
    for operand in operands[1:]:
        acc = fold(acc, operand)
    return acc


def send(vcomm, obj: Any, dest: int, tag: int = 0):
    """Generator: object send (size header, then payload, same tag —
    non-overtaking per (source, tag) keeps the pair adjacent)."""
    payload = _dumps(obj)
    header = np.array([payload.size], dtype=_SIZE)
    yield from vcomm.Send(header, dest, tag=tag)
    yield from vcomm.Send(payload, dest, tag=tag)


def recv(vcomm, source: int = -1, tag: int = -1):
    """Generator: object receive; returns ``(obj, source, tag, nbytes)``
    with the *actual* matched source/tag (wildcards resolved by the
    header's envelope, which then pins the payload receive)."""
    header = np.empty(1, dtype=_SIZE)
    status = yield from vcomm.Recv(header, source, tag=tag)
    payload = np.empty(int(header[0]), dtype=np.uint8)
    yield from vcomm.Recv(payload, status.source, tag=status.tag)
    return _loads(payload), status.source, status.tag, payload.size


def sendrecv(vcomm, obj: Any, dest: int, sendtag: int,
             source: int = -1, recvtag: int = -1):
    """Generator: paired object exchange, deadlock-free (the send half
    runs as a nonblocking operation while the receive blocks)."""
    outgoing = vcomm.ctx.start(send(vcomm, obj, dest, sendtag))
    result = yield from recv(vcomm, source, tag=recvtag)
    yield from vcomm.ctx.wait(outgoing)
    return result
