"""Entry points: run an unmodified mpi4py program on simulated ranks.

:func:`run` is the library API — point it at a Python function and it
executes one copy per simulated rank (each on its own thread, bridged
to a coroutine-backed rank; see :mod:`repro.shim.bridge`) and returns
the session's full :class:`~repro.api.RunResult`: per-rank return
values, simulated latency, span timeline, Perfetto export, LogGP
attribution via the existing observability stack.

:func:`run_script` is the CLI's engine (``python -m repro shim run
script.py``): it executes a script file as ``__main__`` on every rank,
with ``mpi4py`` aliased to :mod:`repro.shim` in ``sys.modules`` so the
script's own ``from mpi4py import MPI`` resolves to the shim without
editing the file.
"""

from __future__ import annotations

import contextlib
import os
import runpy
import sys
from typing import Any, Callable, Optional, Tuple

from ..api import RunResult, Session
from ..machine import MachineParams
from ..sim.spec import EngineSpec, _parse_engine
from .bridge import RankBridge


def _geometry(nranks: Optional[int], nodes: Optional[int],
              ppn: Optional[int]) -> Tuple[int, int]:
    """Resolve a cluster shape from whichever of ``nranks``/``nodes``/
    ``ppn`` the caller pinned (mpi4py users think in ``-n <ranks>``;
    the machine model thinks in nodes × ppn)."""
    if nranks is None:
        return nodes or 4, ppn or 4
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    if nodes is not None and ppn is not None:
        if nodes * ppn != nranks:
            raise ValueError(
                f"nranks={nranks} inconsistent with nodes={nodes} x "
                f"ppn={ppn}")
        return nodes, ppn
    if ppn is not None:
        if nranks % ppn:
            raise ValueError(f"nranks={nranks} not divisible by ppn={ppn}")
        return nranks // ppn, ppn
    if nodes is not None:
        if nranks % nodes:
            raise ValueError(
                f"nranks={nranks} not divisible by nodes={nodes}")
        return nodes, nranks // nodes
    # Prefer a multi-node shape (collectives differ materially across
    # the node boundary): largest ppn <= 8 that leaves >= 2 nodes.
    for ppn_try in range(min(8, nranks), 0, -1):
        if nranks % ppn_try == 0 and nranks // ppn_try >= 2:
            return nranks // ppn_try, ppn_try
    return 1, nranks


def _serial_engine(engine) -> Tuple[Optional[str], Optional[str]]:
    """Strip forked shard workers from an engine request.

    Worker processes re-execute shard event loops after ``fork()``;
    the shim's rank threads (and their request queues) only exist in
    the parent, so a forked pump would block forever.  Returns the
    adjusted engine string plus a human-readable note when the clamp
    fired.
    """
    if engine is None:
        return None, None
    if isinstance(engine, EngineSpec):
        requested = engine.requested or engine.name
    else:
        requested = str(engine)
    name, shards, workers = _parse_engine(requested)
    if workers is not None and workers > 1:
        clamped = f"sharded:{shards}" if shards is not None else "sharded"
        return clamped, (
            f"workers {workers} -> 1: shim rank threads do not survive "
            "forked shard workers")
    return requested, None


def run(fn: Callable[..., Any], *, nranks: Optional[int] = None,
        library: str = "PiP-MColl", nodes: Optional[int] = None,
        ppn: Optional[int] = None, params: Optional[MachineParams] = None,
        engine=None, trace: bool = True, resources: bool = False,
        args: Tuple = (), **world_kwargs) -> RunResult:
    """Execute ``fn(*args)`` as an unmodified mpi4py program on every
    simulated rank; returns the :class:`~repro.api.RunResult`.

    ``fn`` runs on one thread per rank and may call anything in
    :mod:`repro.shim.mpi` (``MPI.COMM_WORLD``, ``MPI.Wtime``, …).
    Geometry comes from ``nranks`` (mpi4py's ``mpiexec -n``) or an
    explicit ``nodes``/``ppn``/``params``; ``library``/``engine``/
    ``trace``/``resources`` and extra ``world_kwargs`` mean exactly
    what they do on :class:`~repro.api.Session`.  Per-rank return
    values land in ``result.values``; any note the shim attached (for
    example a forked-worker clamp) in ``result.shim_notes``.
    """
    engine, note = _serial_engine(engine)
    if params is not None:
        if nranks is not None and nranks != params.world_size:
            raise ValueError(
                f"nranks={nranks} inconsistent with params "
                f"({params.nodes} nodes x {params.ppn} ppn)")
        session = Session(library=library, params=params, trace=trace,
                          resources=resources, engine=engine,
                          **world_kwargs)
    else:
        nodes, ppn = _geometry(nranks, nodes, ppn)
        session = Session(library=library, nodes=nodes, ppn=ppn,
                          trace=trace, resources=resources, engine=engine,
                          **world_kwargs)

    bridges = []

    def app(vcomm):
        bridge = RankBridge(vcomm, fn, args)
        bridges.append(bridge)
        value = yield from bridge.pump()
        return value

    try:
        result = session.run(app)
    finally:
        # Wake anything still blocked in an MPI call (a sibling rank
        # raised, or the world deadlocked) and reap the rank threads.
        for bridge in bridges:
            bridge.abort()
        for bridge in bridges:
            bridge.join()
    result.shim_notes = (note,) if note else ()
    return result


@contextlib.contextmanager
def _script_environment(script: str, argv: Tuple[str, ...]):
    """Make ``from mpi4py import MPI`` resolve to the shim and give the
    script its own ``sys.argv``, restoring both on exit."""
    from .. import shim as shim_pkg
    from . import mpi as shim_mpi

    saved_modules = {name: sys.modules.get(name)
                     for name in ("mpi4py", "mpi4py.MPI")}
    saved_argv = sys.argv
    sys.modules["mpi4py"] = shim_pkg
    sys.modules["mpi4py.MPI"] = shim_mpi
    sys.argv = [script, *argv]
    try:
        yield
    finally:
        sys.argv = saved_argv
        for name, module in saved_modules.items():
            if module is None:
                sys.modules.pop(name, None)
            else:
                sys.modules[name] = module


def run_script(path, *, argv: Tuple[str, ...] = (),
               **run_kwargs) -> RunResult:
    """Run a script file as ``__main__`` on every simulated rank.

    The file is untouched: ``mpi4py`` is aliased to the shim for the
    duration of the run, so real-world MPI scripts execute as-is.
    Keyword arguments are :func:`run`'s.
    """
    script = os.fspath(path)
    if not os.path.exists(script):
        raise FileNotFoundError(script)

    def rank_main():
        runpy.run_path(script, run_name="__main__")

    with _script_environment(script, tuple(argv)):
        return run(rank_main, **run_kwargs)
