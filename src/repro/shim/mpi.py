"""Drop-in ``MPI`` module: the mpi4py surface over simulated ranks.

``from repro.shim import MPI`` gives unmodified mpi4py programs the
names they expect — ``MPI.COMM_WORLD``, datatype/op constants,
``MPI.Wtime`` — backed by whichever simulated rank the calling thread
belongs to (see :mod:`repro.shim.bridge`).  ``MPI.COMM_WORLD`` is a
single module-level object, but every method resolves through the
thread-local bridge, so each rank thread sees its own communicator —
exactly as each MPI *process* sees its own ``COMM_WORLD``.

Supported surface (the full matrix lives in ``docs/SHIM.md``):

* pickle protocol — ``bcast`` ``gather`` ``scatter`` ``allgather``
  ``allreduce`` ``reduce`` ``send`` ``recv`` ``sendrecv`` ``barrier``
* buffer protocol (contiguous numpy) — ``Bcast`` ``Allreduce``
  ``Allgather`` ``Alltoall`` ``Gather`` ``Scatter`` ``Reduce``
  ``Send`` ``Recv`` ``Sendrecv`` ``Barrier``
* communicator management — ``Split`` ``Dup`` ``Free``
* environment — ``Wtime`` ``Wtick`` ``Get_processor_name``

Anything else raises :class:`~repro.shim.errors.ShimUnsupportedError`
naming the attribute: the shim fails loudly rather than silently
diverging from what real mpi4py would compute.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..runtime import ops as _rt_ops
from . import proto
from .bridge import current_bridge
from .errors import ShimError, ShimTypeError, ShimUnsupportedError

#: wildcard source for receives (matches mpi4py / the runtime)
ANY_SOURCE = -1
#: wildcard tag for receives
ANY_TAG = -1
#: null peer: sends/recvs addressed to it complete immediately
PROC_NULL = -2
#: mpi4py's MPI_UNDEFINED (Split color for "leave me out")
UNDEFINED = -32766


class Datatype:
    """An MPI datatype constant, pinned to a numpy dtype."""

    __slots__ = ("name", "np_dtype")

    def __init__(self, name: str, np_dtype) -> None:
        self.name = name
        self.np_dtype = np.dtype(np_dtype)

    @property
    def size(self) -> int:
        """Extent in bytes (mpi4py ``Get_size``)."""
        return self.np_dtype.itemsize

    def Get_size(self) -> int:
        return self.np_dtype.itemsize

    def __repr__(self) -> str:
        return f"<MPI.Datatype {self.name}>"


BYTE = Datatype("BYTE", np.uint8)
CHAR = Datatype("CHAR", np.int8)
SHORT = Datatype("SHORT", np.int16)
INT = Datatype("INT", np.int32)
LONG = Datatype("LONG", np.int64)
LONG_LONG = Datatype("LONG_LONG", np.int64)
UNSIGNED = Datatype("UNSIGNED", np.uint32)
UNSIGNED_LONG = Datatype("UNSIGNED_LONG", np.uint64)
INT8_T = Datatype("INT8_T", np.int8)
INT16_T = Datatype("INT16_T", np.int16)
INT32_T = Datatype("INT32_T", np.int32)
INT64_T = Datatype("INT64_T", np.int64)
UINT8_T = Datatype("UINT8_T", np.uint8)
UINT16_T = Datatype("UINT16_T", np.uint16)
UINT32_T = Datatype("UINT32_T", np.uint32)
UINT64_T = Datatype("UINT64_T", np.uint64)
FLOAT = Datatype("FLOAT", np.float32)
DOUBLE = Datatype("DOUBLE", np.float64)
C_BOOL = Datatype("C_BOOL", np.bool_)
BOOL = Datatype("BOOL", np.bool_)
COMPLEX = Datatype("COMPLEX", np.complex64)
DOUBLE_COMPLEX = Datatype("DOUBLE_COMPLEX", np.complex128)


class Op:
    """A reduction operator: the runtime's elementwise
    :class:`~repro.runtime.ops.ReduceOp` for buffer calls, a Python
    fold for pickle (object-mode) calls."""

    __slots__ = ("name", "reduce_op", "py")

    def __init__(self, name: str, reduce_op, py) -> None:
        self.name = name
        self.reduce_op = reduce_op
        self.py = py

    def __repr__(self) -> str:
        return f"<MPI.Op {self.name}>"


SUM = Op("SUM", _rt_ops.SUM, lambda a, b: a + b)
PROD = Op("PROD", _rt_ops.PROD, lambda a, b: a * b)
MAX = Op("MAX", _rt_ops.MAX, lambda a, b: b if b > a else a)
MIN = Op("MIN", _rt_ops.MIN, lambda a, b: b if b < a else a)
LAND = Op("LAND", _rt_ops.LAND, lambda a, b: bool(a) and bool(b))
LOR = Op("LOR", _rt_ops.LOR, lambda a, b: bool(a) or bool(b))
BAND = Op("BAND", _rt_ops.BAND, lambda a, b: a & b)
BOR = Op("BOR", _rt_ops.BOR, lambda a, b: a | b)
BXOR = Op("BXOR", _rt_ops.BXOR, lambda a, b: a ^ b)


class _InPlace:
    def __repr__(self) -> str:
        return "<MPI.IN_PLACE>"


#: accepted for signature compatibility; using it raises
#: ShimUnsupportedError (the shim models explicit send/recv buffers)
IN_PLACE = _InPlace()


class Status:
    """Receive completion record (``MPI.Status()``)."""

    def __init__(self) -> None:
        self.source = UNDEFINED
        self.tag = UNDEFINED
        self.count = 0

    def _set(self, source: int, tag: int, count: int) -> None:
        self.source = source
        self.tag = tag
        self.count = count

    def Get_source(self) -> int:
        return self.source

    def Get_tag(self) -> int:
        return self.tag

    def Get_count(self, datatype: Optional[Datatype] = None) -> int:
        """Received element count (bytes for the default BYTE)."""
        if datatype is None or datatype.np_dtype.itemsize == 1:
            return self.count
        return self.count // datatype.np_dtype.itemsize

    def __repr__(self) -> str:
        return (f"<MPI.Status source={self.source} tag={self.tag} "
                f"count={self.count}>")


def _parse_buffer(spec: Any, *, what: str,
                  writable: bool) -> Optional[np.ndarray]:
    """Resolve an mpi4py buffer spec — ``ndarray``, ``[ndarray]``,
    ``[ndarray, MPI.<TYPE>]`` or ``[ndarray, count, MPI.<TYPE>]`` — to
    the underlying contiguous array, enforcing the shim's faithfulness
    rules (:class:`ShimTypeError` on anything it cannot honour)."""
    if spec is None:
        return None
    if isinstance(spec, _InPlace):
        raise ShimUnsupportedError(f"MPI.IN_PLACE (in {what})")
    if isinstance(spec, np.ndarray):
        arr = spec
    elif isinstance(spec, (list, tuple)):
        if not spec or not isinstance(spec[0], np.ndarray):
            raise ShimTypeError(
                f"{what}: buffer spec must start with a numpy array, "
                f"got {spec!r} — use the lowercase pickle-protocol "
                "method for arbitrary Python objects")
        arr = spec[0]
        for item in spec[1:]:
            if isinstance(item, Datatype):
                if item.np_dtype != arr.dtype:
                    raise ShimTypeError(
                        f"{what}: buffer dtype {arr.dtype} does not "
                        f"match the declared MPI.{item.name} "
                        f"({item.np_dtype})")
            elif isinstance(item, (int, np.integer)):
                if int(item) != arr.size:
                    raise ShimTypeError(
                        f"{what}: explicit count {int(item)} != array "
                        f"size {arr.size}; pass a sliced view instead")
            else:
                raise ShimTypeError(
                    f"{what}: unsupported buffer-spec element "
                    f"{item!r} (expected a count or an MPI datatype)")
    else:
        raise ShimTypeError(
            f"{what}: expected a numpy array or an "
            f"[array, MPI.<TYPE>] spec, got {type(spec).__name__} — "
            "use the lowercase pickle-protocol method for arbitrary "
            "Python objects")
    if not arr.flags.c_contiguous:
        raise ShimTypeError(
            f"{what}: buffer is not C-contiguous; the runtime's "
            "write-back would silently drop data on a strided view. "
            "Pass np.ascontiguousarray(...) or use the lowercase "
            "pickle-protocol method")
    if writable and not arr.flags.writeable:
        raise ShimTypeError(f"{what}: receive buffer is read-only")
    return arr


class Comm:
    """An mpi4py-style communicator handle.

    The module-level :data:`COMM_WORLD` is unbound — it resolves to the
    calling thread's rank on every use.  Communicators returned by
    :meth:`Split`/:meth:`Dup` are bound to the rank that created them.
    """

    def __init__(self, binder=None, name: str = "MPI_COMM_WORLD") -> None:
        self._binder = binder  # None → COMM_WORLD of the current bridge
        self._comm_name = name
        self._freed = False

    # -- plumbing ------------------------------------------------------
    def _bound(self):
        if self._freed:
            raise ShimError(f"{self._comm_name} has been freed")
        bridge = current_bridge()
        if self._binder is None:
            return bridge, bridge.vcomm
        owner, vcomm = self._binder
        if owner is not bridge:
            raise ShimError(
                f"{self._comm_name} belongs to rank {owner.rank}; it "
                f"cannot be used from rank {bridge.rank} (communicator "
                "handles are per-rank, like real MPI handles)")
        return bridge, vcomm

    def __getattr__(self, name: str):
        if name.startswith("__"):
            raise AttributeError(name)
        raise ShimUnsupportedError(f"Comm.{name}")

    def __repr__(self) -> str:
        return f"<repro.shim Comm {self._comm_name}>"

    # -- introspection -------------------------------------------------
    def Get_rank(self) -> int:
        return self._bound()[1].rank

    def Get_size(self) -> int:
        return self._bound()[1].size

    @property
    def rank(self) -> int:
        return self.Get_rank()

    @property
    def size(self) -> int:
        return self.Get_size()

    def Get_name(self) -> str:
        return self._comm_name

    # -- communicator management ---------------------------------------
    def Split(self, color: int = 0, key: int = 0) -> "Comm":
        bridge, vcomm = self._bound()
        c = None if (color is None or color == UNDEFINED) else int(color)
        sub = bridge.call("Split", lambda: vcomm.Split(c, key),
                          color=color, key=key)
        if sub is None:
            return COMM_NULL
        return Comm(binder=(bridge, sub),
                    name=f"{self._comm_name}.split({color})")

    def Dup(self) -> "Comm":
        """Communicator duplication — modeled as a same-membership
        Split (a real dup is also a collective; the new communicator
        gets its own matching context)."""
        bridge, vcomm = self._bound()
        sub = bridge.call("Dup", lambda: vcomm.Split(0, vcomm.rank))
        return Comm(binder=(bridge, sub), name=f"{self._comm_name}.dup")

    def Free(self) -> None:
        if self._binder is None:
            raise ShimError("cannot free MPI_COMM_WORLD")
        self._bound()  # ownership + double-free check
        self._freed = True

    # -- pickle protocol (lowercase, arbitrary objects) ----------------
    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        bridge, vcomm = self._bound()
        return bridge.call("bcast", lambda: proto.bcast(vcomm, obj, root),
                           root=root)

    def gather(self, sendobj: Any, root: int = 0):
        bridge, vcomm = self._bound()
        return bridge.call("gather",
                           lambda: proto.gather(vcomm, sendobj, root),
                           root=root)

    def scatter(self, sendobj: Any = None, root: int = 0) -> Any:
        bridge, vcomm = self._bound()
        return bridge.call("scatter",
                           lambda: proto.scatter(vcomm, sendobj, root),
                           root=root)

    def allgather(self, sendobj: Any):
        bridge, vcomm = self._bound()
        return bridge.call("allgather",
                           lambda: proto.allgather(vcomm, sendobj))

    def allreduce(self, sendobj: Any, op: Op = SUM) -> Any:
        bridge, vcomm = self._bound()
        return bridge.call("allreduce",
                           lambda: proto.allreduce(vcomm, sendobj, op.py),
                           op=op.name)

    def reduce(self, sendobj: Any, op: Op = SUM, root: int = 0) -> Any:
        bridge, vcomm = self._bound()
        return bridge.call("reduce",
                           lambda: proto.reduce(vcomm, sendobj, op.py, root),
                           op=op.name, root=root)

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if dest == PROC_NULL:
            return
        bridge, vcomm = self._bound()
        bridge.call("send", lambda: proto.send(vcomm, obj, dest, tag),
                    dest=dest, tag=tag)

    def recv(self, buf: Any = None, source: int = ANY_SOURCE,
             tag: int = ANY_TAG, status: Optional[Status] = None) -> Any:
        # ``buf`` is mpi4py's optional pre-allocated pickle buffer — an
        # allocation hint only; the shim always allocates.
        if source == PROC_NULL:
            if status is not None:
                status._set(PROC_NULL, ANY_TAG, 0)
            return None
        bridge, vcomm = self._bound()
        obj, src, mtag, nbytes = bridge.call(
            "recv", lambda: proto.recv(vcomm, source, tag),
            source=source, tag=tag)
        if status is not None:
            status._set(src, mtag, nbytes)
        return obj

    def sendrecv(self, sendobj: Any, dest: int, sendtag: int = 0,
                 recvbuf: Any = None, source: int = ANY_SOURCE,
                 recvtag: int = ANY_TAG,
                 status: Optional[Status] = None) -> Any:
        if dest == PROC_NULL and source == PROC_NULL:
            if status is not None:
                status._set(PROC_NULL, ANY_TAG, 0)
            return None
        if dest == PROC_NULL:
            return self.recv(recvbuf, source, recvtag, status)
        if source == PROC_NULL:
            self.send(sendobj, dest, sendtag)
            if status is not None:
                status._set(PROC_NULL, ANY_TAG, 0)
            return None
        bridge, vcomm = self._bound()
        obj, src, mtag, nbytes = bridge.call(
            "sendrecv",
            lambda: proto.sendrecv(vcomm, sendobj, dest, sendtag,
                                   source, recvtag),
            dest=dest, source=source)
        if status is not None:
            status._set(src, mtag, nbytes)
        return obj

    def barrier(self) -> None:
        bridge, vcomm = self._bound()
        bridge.call("barrier", lambda: vcomm.Barrier())

    # -- buffer protocol (uppercase, contiguous numpy) -----------------
    def Barrier(self) -> None:
        bridge, vcomm = self._bound()
        bridge.call("Barrier", lambda: vcomm.Barrier())

    def Bcast(self, buf: Any, root: int = 0) -> None:
        bridge, vcomm = self._bound()
        arr = _parse_buffer(buf, what="Bcast", writable=True)
        bridge.call("Bcast", lambda: vcomm.Bcast(arr, root=root),
                    root=root, nbytes=arr.nbytes)

    def Send(self, buf: Any, dest: int, tag: int = 0) -> None:
        if dest == PROC_NULL:
            return
        bridge, vcomm = self._bound()
        arr = _parse_buffer(buf, what="Send", writable=False)
        bridge.call("Send", lambda: vcomm.Send(arr, dest, tag=tag),
                    dest=dest, tag=tag, nbytes=arr.nbytes)

    def Recv(self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Optional[Status] = None) -> None:
        bridge, vcomm = self._bound()
        arr = _parse_buffer(buf, what="Recv", writable=True)
        if source == PROC_NULL:
            if status is not None:
                status._set(PROC_NULL, ANY_TAG, 0)
            return
        st = bridge.call("Recv", lambda: vcomm.Recv(arr, source, tag=tag),
                         source=source, tag=tag, nbytes=arr.nbytes)
        if status is not None:
            status._set(st.source, st.tag, st.nbytes)

    def Sendrecv(self, sendbuf: Any, dest: int, sendtag: int = 0,
                 recvbuf: Any = None, source: int = ANY_SOURCE,
                 recvtag: int = ANY_TAG,
                 status: Optional[Status] = None) -> None:
        bridge, vcomm = self._bound()
        sarr = _parse_buffer(sendbuf, what="Sendrecv(send)", writable=False)
        rarr = _parse_buffer(recvbuf, what="Sendrecv(recv)", writable=True)
        if dest == PROC_NULL and source == PROC_NULL:
            if status is not None:
                status._set(PROC_NULL, ANY_TAG, 0)
            return
        if dest == PROC_NULL:
            return self.Recv(recvbuf, source, recvtag, status)
        if source == PROC_NULL:
            self.Send(sendbuf, dest, sendtag)
            if status is not None:
                status._set(PROC_NULL, ANY_TAG, 0)
            return
        st = bridge.call(
            "Sendrecv",
            lambda: vcomm.Sendrecv(sarr, dest, sendtag, rarr, source,
                                   recvtag),
            dest=dest, source=source, nbytes=sarr.nbytes)
        if status is not None:
            status._set(st.source, st.tag, st.nbytes)

    def Allreduce(self, sendbuf: Any, recvbuf: Any, op: Op = SUM) -> None:
        bridge, vcomm = self._bound()
        sarr = _parse_buffer(sendbuf, what="Allreduce(send)", writable=False)
        rarr = _parse_buffer(recvbuf, what="Allreduce(recv)", writable=True)
        if sarr.dtype != rarr.dtype:
            raise ShimTypeError(
                f"Allreduce: send dtype {sarr.dtype} != recv dtype "
                f"{rarr.dtype}")
        bridge.call("Allreduce",
                    lambda: vcomm.Allreduce(sarr, rarr, op=op.reduce_op),
                    op=op.name, nbytes=sarr.nbytes)

    def Reduce(self, sendbuf: Any, recvbuf: Any, op: Op = SUM,
               root: int = 0) -> None:
        bridge, vcomm = self._bound()
        sarr = _parse_buffer(sendbuf, what="Reduce(send)", writable=False)
        rarr = _parse_buffer(recvbuf, what="Reduce(recv)", writable=True)
        if rarr is not None and sarr.dtype != rarr.dtype:
            raise ShimTypeError(
                f"Reduce: send dtype {sarr.dtype} != recv dtype "
                f"{rarr.dtype}")
        bridge.call("Reduce",
                    lambda: vcomm.Reduce(sarr, rarr, op=op.reduce_op,
                                         root=root),
                    op=op.name, root=root, nbytes=sarr.nbytes)

    def Allgather(self, sendbuf: Any, recvbuf: Any) -> None:
        bridge, vcomm = self._bound()
        sarr = _parse_buffer(sendbuf, what="Allgather(send)", writable=False)
        rarr = _parse_buffer(recvbuf, what="Allgather(recv)", writable=True)
        bridge.call("Allgather", lambda: vcomm.Allgather(sarr, rarr),
                    nbytes=sarr.nbytes)

    def Alltoall(self, sendbuf: Any, recvbuf: Any) -> None:
        bridge, vcomm = self._bound()
        sarr = _parse_buffer(sendbuf, what="Alltoall(send)", writable=False)
        rarr = _parse_buffer(recvbuf, what="Alltoall(recv)", writable=True)
        bridge.call("Alltoall", lambda: vcomm.Alltoall(sarr, rarr),
                    nbytes=sarr.nbytes)

    def Gather(self, sendbuf: Any, recvbuf: Any, root: int = 0) -> None:
        bridge, vcomm = self._bound()
        sarr = _parse_buffer(sendbuf, what="Gather(send)", writable=False)
        rarr = _parse_buffer(recvbuf, what="Gather(recv)", writable=True)
        bridge.call("Gather",
                    lambda: vcomm.Gather(sarr, rarr, root=root),
                    root=root, nbytes=sarr.nbytes)

    def Scatter(self, sendbuf: Any, recvbuf: Any, root: int = 0) -> None:
        bridge, vcomm = self._bound()
        sarr = _parse_buffer(sendbuf, what="Scatter(send)", writable=False)
        rarr = _parse_buffer(recvbuf, what="Scatter(recv)", writable=True)
        bridge.call("Scatter",
                    lambda: vcomm.Scatter(sarr, rarr, root=root),
                    root=root, nbytes=rarr.nbytes)


#: mpi4py exposes COMM_WORLD as an Intracomm
Intracomm = Comm


class _NullComm(Comm):
    """MPI_COMM_NULL: every operation is erroneous."""

    def __init__(self) -> None:
        super().__init__(binder=None, name="MPI_COMM_NULL")

    def _bound(self):
        raise ShimError(
            "operation on MPI_COMM_NULL (e.g. this rank passed "
            "MPI.UNDEFINED to Split)")

    def Get_rank(self) -> int:
        self._bound()

    def Get_size(self) -> int:
        self._bound()

    def Free(self) -> None:
        pass

    def __repr__(self) -> str:
        return "<repro.shim Comm MPI_COMM_NULL>"


COMM_WORLD = Comm()
COMM_NULL = _NullComm()


# -- environment -------------------------------------------------------
def Wtime() -> float:
    """Simulated seconds at this rank's last completed MPI call —
    deterministic, unlike reading the global simulator clock (which may
    already have advanced for other ranks)."""
    return current_bridge().now


def Wtick() -> float:
    return 1e-9


def Get_processor_name() -> str:
    """The simulated node hosting this rank."""
    return f"node{current_bridge().ctx.node_id}"


def Init() -> None:
    """No-op: the world is initialized by :func:`repro.shim.run`."""


def Finalize() -> None:
    """No-op: teardown happens when the rank function returns."""


def Is_initialized() -> bool:
    return True


def Is_finalized() -> bool:
    return False


def __getattr__(name: str):
    if name.startswith("_"):
        raise AttributeError(name)
    raise ShimUnsupportedError(f"MPI.{name}")
