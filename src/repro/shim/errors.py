"""Shim error taxonomy.

Every failure the shim itself raises derives from :class:`ShimError`,
so user programs (and tests) can separate "the shim refused the call"
from "the simulated MPI run went wrong" (those surface as the
runtime's own :class:`~repro.runtime.errors.MpiError` family).

The hierarchy doubles as the *unsupported-call policy* documented in
``docs/SHIM.md``: anything outside the supported mpi4py surface fails
loudly at the call site with an error naming the attribute — never a
silent no-op that would let an application diverge from what real
mpi4py would have computed.
"""

from __future__ import annotations


class ShimError(Exception):
    """Base class for every error raised by :mod:`repro.shim`."""


class ShimTypeError(ShimError, TypeError):
    """A buffer argument the shim cannot honour faithfully.

    Raised for mismatched buffer dtypes (``[array, MPI.DOUBLE]`` where
    the array is not float64), non-contiguous arrays passed to the
    buffer protocol (use the pickle protocol — lowercase methods — for
    arbitrary views), and buffer specs the shim cannot parse.
    """


class ShimNotRunningError(ShimError, RuntimeError):
    """An MPI call issued outside a shim run.

    ``repro.shim.MPI`` binds to a simulated rank only inside
    :func:`repro.shim.run` (or ``python -m repro shim run``); importing
    the module is always safe, calling into a communicator is not.
    """


class ShimUnsupportedError(ShimError, NotImplementedError):
    """An mpi4py attribute/method the shim does not model.

    Names the missing attribute and points at ``docs/SHIM.md`` for the
    supported-surface matrix — the policy is to fail loudly rather
    than approximate.
    """

    def __init__(self, what: str) -> None:
        super().__init__(
            f"repro.shim does not implement {what!r}; see docs/SHIM.md "
            "for the supported mpi4py surface (unsupported calls fail "
            "loudly by design)"
        )
        self.what = what


class ShimAbortedError(ShimError):
    """The run was torn down while this rank was blocked in a call.

    Posted into user threads when a sibling rank raised or the world
    deadlocked — the shim's analogue of MPI_Abort reaching a rank that
    was still inside a collective.
    """
