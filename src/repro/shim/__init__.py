"""repro.shim — run real mpi4py programs on the simulated runtime.

The paper's collectives matter because applications reach them through
mpi4py.  This package is the compatibility frontend: an ``MPI`` module
exposing the mpi4py surface (``MPI.COMM_WORLD``, pickle + buffer
protocols, datatype/op constants, ``Wtime``) backed by simulated
coroutine ranks, so unmodified user code runs against any modeled
library/machine/engine and comes back with latency, LogGP attribution
and Perfetto traces::

    from repro import shim
    from repro.shim import MPI

    def app():
        rank = MPI.COMM_WORLD.Get_rank()
        return MPI.COMM_WORLD.allreduce(rank)

    result = shim.run(app, nranks=16, library="PiP-MColl")
    result.values      # [120, 120, ...] — one per rank
    result.elapsed     # simulated seconds
    result.write_perfetto("trace.json")

Or, without touching the script at all::

    python -m repro shim run script.py --nranks 16 --library PiP-MColl

See ``docs/SHIM.md`` for the supported-surface matrix and the
unsupported-call policy (fail loudly, never approximate silently).
"""

from . import mpi as MPI
from .errors import (ShimAbortedError, ShimError, ShimNotRunningError,
                     ShimTypeError, ShimUnsupportedError)
from .runner import run, run_script

__all__ = [
    "MPI",
    "run",
    "run_script",
    "ShimError",
    "ShimTypeError",
    "ShimNotRunningError",
    "ShimUnsupportedError",
    "ShimAbortedError",
]
