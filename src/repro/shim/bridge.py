"""The rank bridge: synchronous user code over coroutine-backed ranks.

Real mpi4py programs are plain synchronous Python — ``comm.bcast(x)``
returns when the broadcast is done.  The simulated runtime underneath
is cooperative: every communication is a generator that must be driven
by the simulator's event loop.  The bridge reconciles the two with one
OS thread per simulated rank:

* the **user thread** runs the unmodified program; every MPI call
  packages the operation as a generator factory, posts it to the
  rank's request queue, and blocks until the result comes back;
* the **simulator thread** runs :meth:`RankBridge.pump` as the rank's
  program generator: it waits for the next request, executes it with
  ``yield from`` (interleaving with every other rank exactly as a
  native :class:`~repro.api.VComm` app would), and posts the result.

Because simulated time only advances inside the delegated generators,
the event sequence — and therefore every timestamp — is identical to
the same calls issued natively.  User threads may compute concurrently
between calls (that costs zero simulated time, like any local code in
a ``VComm`` app); within one rank the protocol is strictly
sequential, so there are no data races on user buffers.

The thread-local :func:`current_bridge` is how ``repro.shim.MPI``
(a process-global module) resolves to *this* rank: each user thread
sees its own bridge, exactly as each MPI process sees its own
``MPI.COMM_WORLD``.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Optional, Tuple

from .errors import ShimAbortedError, ShimNotRunningError

_tls = threading.local()

#: request kinds posted by the user thread
_CALL, _DONE, _RAISE, _ABORTED = "call", "done", "raise", "aborted"


def current_bridge() -> "RankBridge":
    """The bridge of the calling user thread.

    Raises :class:`ShimNotRunningError` outside a shim run — e.g. when
    ``MPI.COMM_WORLD`` is poked at import time from the main thread.
    """
    bridge = getattr(_tls, "bridge", None)
    if bridge is None:
        raise ShimNotRunningError(
            "repro.shim.MPI is not bound to a rank on this thread; MPI "
            "calls only work inside repro.shim.run(...) or "
            "`python -m repro shim run <script>` (see docs/SHIM.md)"
        )
    return bridge


class RankBridge:
    """One simulated rank's half-duplex channel to its user thread."""

    def __init__(self, vcomm, fn: Callable[..., Any],
                 args: Tuple = ()) -> None:
        #: the rank's COMM_WORLD :class:`~repro.api.VComm`
        self.vcomm = vcomm
        self.ctx = vcomm.ctx
        self.rank = vcomm.rank
        self._fn = fn
        self._args = args
        self._requests: "queue.Queue" = queue.Queue()
        self._replies: "queue.Queue" = queue.Queue()
        #: simulated time of this rank's last completed call — what
        #: ``MPI.Wtime()`` returns (deterministic: global ``sim.now``
        #: may already have advanced for other ranks)
        self.now = 0.0
        self._aborted = False
        self._thread: Optional[threading.Thread] = None

    # -- user-thread side --------------------------------------------------
    def call(self, name: str, factory: Callable[[], Any], **attrs) -> Any:
        """Run ``factory()`` (a generator) on the simulator; block for
        and return its result.  Raises whatever the operation raised."""
        if self._aborted:
            raise ShimAbortedError(
                f"rank {self.rank}: the shim run was torn down "
                "(a sibling rank failed or the world deadlocked)"
            )
        self._requests.put((_CALL, name, factory, attrs))
        kind, payload = self._replies.get()
        if kind == "err":
            raise payload
        return payload

    def _user_main(self) -> None:
        _tls.bridge = self
        try:
            value = self._fn(*self._args)
        except ShimAbortedError:
            self._requests.put((_ABORTED, None, None, None))
        except BaseException as exc:  # surfaces from World.run
            self._requests.put((_RAISE, exc, None, None))
        else:
            self._requests.put((_DONE, value, None, None))
        finally:
            _tls.bridge = None

    # -- simulator-thread side ---------------------------------------------
    def pump(self):
        """The rank program (a generator): drive the user thread's
        requests until the program returns; its return value becomes
        the rank's entry in ``RunResult.values``."""
        self.now = self.ctx.now
        self._thread = threading.Thread(
            target=self._user_main, name=f"shim-rank{self.rank}",
            daemon=True)
        self._thread.start()
        while True:
            kind, head, factory, attrs = self._requests.get()
            if kind == _DONE:
                return head
            if kind == _ABORTED:
                return None
            if kind == _RAISE:
                raise head
            try:
                with self.ctx.span(f"shim.{head}", cat="shim", **attrs):
                    result = yield from factory()
            except Exception as exc:
                self.now = self.ctx.now
                self._replies.put(("err", exc))
            else:
                self.now = self.ctx.now
                self._replies.put(("ok", result))

    # -- teardown ----------------------------------------------------------
    def abort(self) -> None:
        """Unblock the user thread with :class:`ShimAbortedError`.

        Called after the world's run ended (normally or not).  A thread
        blocked in :meth:`call` wakes with the error; a thread between
        calls hits the ``_aborted`` flag on its next one.  Idempotent.
        """
        if self._aborted:
            return
        self._aborted = True
        self._replies.put(("err", ShimAbortedError(
            f"rank {self.rank}: the shim run was torn down while this "
            "call was in flight")))

    def join(self, timeout: float = 5.0) -> None:
        """Wait for the user thread to exit (daemon — a thread stuck in
        non-MPI compute is abandoned rather than blocking teardown)."""
        if self._thread is not None:
            self._thread.join(timeout=timeout)
